"""Calibration constants for the simulated testbed, in one place.

The paper's absolute numbers come from specific 2006 hardware (§5.1: a
Celeron 1.2GHz for the I/O tests, a 7200RPM 80GB EIDE disk, 512MB RAM,
100Mbps Ethernet).  The constants below are calibrated so the simulator's
*baseline operating points* land near the paper's, while every *curve shape*
(elevator gains with queue depth, thread-count caps, CPU-bound plateaus) is
emergent from the mechanisms, not scripted.  EXPERIMENTS.md reports
paper-vs-measured series side by side.

Times are in seconds, sizes in bytes, rates in bytes/second.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["SimParams", "DEFAULT_PARAMS"]


@dataclass
class SimParams:
    """Every knob of the simulated machine."""

    # ------------------------------------------------------------------
    # CPU costs (Celeron 1.2GHz class).  The monadic/kernel asymmetry is
    # the paper's architectural point: an application-level context switch
    # is a closure call; a kernel one crosses protection domains.
    # ------------------------------------------------------------------
    #: CPU time to dispatch one monadic system call in the event loop.
    t_monadic_syscall: float = 0.15e-6
    #: CPU time for a monadic thread switch (dequeue + trace force setup).
    #: An application-level switch is a closure call: the event loop's code
    #: and data stay cache-hot.
    t_monadic_switch: float = 0.30e-6
    #: CPU time for a kernel syscall entry/exit (read/write/...).
    t_kernel_syscall: float = 1.5e-6
    #: Direct CPU time for a kernel context switch (NPTL block/wake path).
    t_kernel_switch: float = 9.0e-6
    #: Indirect context-switch cost: cache/TLB refill after returning to a
    #: thread whose working set was evicted.  Well documented to equal or
    #: exceed the direct cost on small-cache machines (the test box is a
    #: Celeron with 256KB L2); this asymmetry versus the always-hot event
    #: loop is the mechanism behind Figure 18's gap.
    t_switch_cache_penalty: float = 6.0e-6
    #: CPU time to copy one byte between buffers.  Calibrated to an
    #: effective ~120MB/s: pipe traffic on the Celeron is cold in its
    #: 256KB L2, so copies run at memory speed, not cache speed.
    t_copy_per_byte: float = 8.0e-9
    #: Fixed CPU time per epoll_wait invocation (harvest batch).
    t_epoll_wait: float = 1.2e-6
    #: CPU time per event returned by epoll_wait.
    t_epoll_event: float = 0.35e-6
    #: CPU time to register/modify interest on an epoll instance.
    t_epoll_register: float = 0.6e-6
    #: CPU time to submit one AIO request.
    t_aio_submit: float = 1.4e-6
    #: Latency for a blocking-pool operation handoff (queue + pool wake).
    t_blio_handoff: float = 6.0e-6
    #: Kernel network-path CPU per packet (interrupt, softirq, TCP/IP
    #: processing) on the 2006 machine — charged per MTU-sized unit moved
    #: through kernel stream sockets, on the host doing the I/O.
    t_net_per_packet: float = 35.0e-6

    #: Cache-pressure coefficient: effective per-byte copy cost grows by
    #: ``1 + alpha * sqrt(resident/ram)`` as resident thread state grows.
    cache_pressure_alpha: float = 0.12

    # ------------------------------------------------------------------
    # Memory (the Fig 17/18 machine: 512MB).
    # ------------------------------------------------------------------
    ram_bytes: int = 512 * 1024 * 1024
    #: NPTL per-thread stack reservation (paper: configured to 32KB,
    #: "allows NPTL to scale up to 16K threads").
    kernel_stack_bytes: int = 32 * 1024
    #: Resident bytes per parked monadic thread (measured in E1; used only
    #: for the cache-pressure model, not as a hard limit).
    monadic_thread_bytes: int = 512

    # ------------------------------------------------------------------
    # Disk (7200RPM 80GB EIDE, 8MB buffer).  Service time for a request at
    # byte offset o with the head at h:
    #     seek(|o-h|) + rotation + size/transfer_rate + overhead
    # seek(d) = seek_min + (seek_max - seek_min) * sqrt(d / disk_span)
    # (the standard sqrt model: short seeks are acceleration-bound).
    # ------------------------------------------------------------------
    disk_span_bytes: int = 80 * 1000 * 1000 * 1000
    disk_seek_min: float = 0.8e-3
    #: Full-stroke seek.  Calibrated above a modern datasheet value: it also
    #: absorbs track-density and settle effects so that random reads inside
    #: a 1GB file land at the paper's measured 0.525 MB/s (queue depth 1)
    #: and ~0.67 MB/s (deep queue) operating points.
    disk_seek_max: float = 22.0e-3
    #: Average rotational latency: half a revolution at 7200RPM.
    disk_rotation: float = 4.17e-3
    disk_transfer_rate: float = 40.0 * 1024 * 1024
    #: Fixed controller/DMA/command overhead per request (EIDE-era).
    disk_overhead: float = 0.8e-3
    #: Write-barrier (fsync/FLUSH CACHE) drain time once every queued
    #: write has completed: roughly one revolution to land the last
    #: sectors plus command overhead.  This is the per-barrier price a
    #: write-ahead log pays — group commit exists to amortise it.
    disk_flush_time: float = 5.0e-3

    # ------------------------------------------------------------------
    # Pipes (Linux FIFO, the Fig 18 workload fixes 4KB).
    # ------------------------------------------------------------------
    pipe_buffer_bytes: int = 4 * 1024

    # ------------------------------------------------------------------
    # Network (100Mbps Ethernet, the Fig 19 link).
    # ------------------------------------------------------------------
    net_bandwidth: float = 100e6 / 8
    net_latency: float = 0.15e-3
    net_mtu: int = 1500

    # ------------------------------------------------------------------
    # Kernel page cache (used by baseline buffered I/O; our server's AIO
    # path bypasses it, like the paper's O_DIRECT + application cache).
    # ------------------------------------------------------------------
    page_bytes: int = 4 * 1024
    page_cache_bytes: int = 100 * 1024 * 1024

    def with_overrides(self, **kwargs) -> "SimParams":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)

    def seek_time(self, distance: int) -> float:
        """Head seek time for a move of ``distance`` bytes."""
        if distance <= 0:
            return 0.0
        frac = min(1.0, distance / self.disk_span_bytes)
        return self.disk_seek_min + (self.disk_seek_max - self.disk_seek_min) * (
            frac ** 0.5
        )

    def disk_service_time(self, distance: int, nbytes: int) -> float:
        """Full service time for one disk request."""
        return (
            self.seek_time(distance)
            + self.disk_rotation
            + nbytes / self.disk_transfer_rate
            + self.disk_overhead
        )

    def copy_cost(self, nbytes: int, pressure: float = 0.0) -> float:
        """CPU cost to copy ``nbytes``, inflated by cache pressure.

        ``pressure`` is resident-state bytes divided by RAM (see
        ``cache_pressure_alpha``).
        """
        scale = 1.0 + self.cache_pressure_alpha * (max(0.0, pressure) ** 0.5)
        return nbytes * self.t_copy_per_byte * scale


#: Shared default parameter set (treat as immutable).
DEFAULT_PARAMS = SimParams()
