"""FIFO pipes with bounded kernel buffers and EAGAIN semantics.

This models the Linux FIFOs of the paper's Figure 18 workload: a 4KB kernel
buffer per pipe, non-blocking reads/writes that return ``WOULD_BLOCK`` when
the buffer is empty/full, and readiness transitions that wake epoll waiters.

Data is modelled as byte *counts* plus an order-checking sequence stream:
actual payloads in the benchmarks are synthetic, but reads return real
``bytes`` so application code (and FIFO-order property tests) work
unchanged.
"""

from __future__ import annotations

from ..core.events import EVENT_HUP, EVENT_READ, EVENT_WRITE
from .errors import BadFileError, BrokenPipeSimError, WOULD_BLOCK
from .pollable import Pollable

__all__ = ["SimPipe", "PipeReadEnd", "PipeWriteEnd", "make_pipe"]

#: Writers on a broken pipe poll as writable+hup so blocked writers wake
#: and observe the error on their next write.
EVENT_ERROR_OR_HUP = EVENT_HUP


class SimPipe:
    """The shared state of one FIFO: a bounded byte buffer."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("pipe capacity must be >= 1")
        self.capacity = capacity
        self.buffer = bytearray()
        self.read_open = True
        self.write_open = True
        #: Total bytes ever written (throughput accounting).
        self.bytes_written = 0

    @property
    def used(self) -> int:
        return len(self.buffer)

    @property
    def space(self) -> int:
        return self.capacity - len(self.buffer)


class PipeReadEnd(Pollable):
    """The read end of a FIFO."""

    def __init__(self, pipe: SimPipe, peer_getter) -> None:
        super().__init__()
        self.pipe = pipe
        self._peer_getter = peer_getter
        self.closed = False

    def poll(self) -> int:
        mask = 0
        if self.pipe.used > 0:
            mask |= EVENT_READ
        elif not self.pipe.write_open:
            mask |= EVENT_READ | EVENT_HUP
        return mask

    def read(self, nbytes: int):
        """Non-blocking read: bytes, ``b""`` at EOF, or ``WOULD_BLOCK``."""
        if self.closed:
            raise BadFileError("read on closed pipe end")
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        pipe = self.pipe
        if pipe.used == 0:
            if not pipe.write_open:
                return b""  # EOF
            return WOULD_BLOCK
        take = min(nbytes, pipe.used)
        data = bytes(pipe.buffer[:take])
        del pipe.buffer[:take]
        # Draining makes the write side ready again.
        peer = self._peer_getter()
        if peer is not None:
            peer.notify()
        return data

    def close(self) -> None:
        """Close the read end; further peer writes raise broken-pipe."""
        if self.closed:
            return
        self.closed = True
        self.pipe.read_open = False
        peer = self._peer_getter()
        if peer is not None:
            peer.notify()


class PipeWriteEnd(Pollable):
    """The write end of a FIFO."""

    def __init__(self, pipe: SimPipe, peer_getter) -> None:
        super().__init__()
        self.pipe = pipe
        self._peer_getter = peer_getter
        self.closed = False

    def poll(self) -> int:
        mask = 0
        if not self.pipe.read_open:
            mask |= EVENT_WRITE | EVENT_ERROR_OR_HUP
        elif self.pipe.space > 0:
            mask |= EVENT_WRITE
        return mask

    def write(self, data: bytes):
        """Non-blocking write: bytes accepted (may be partial), or
        ``WOULD_BLOCK`` if the buffer is full."""
        if self.closed:
            raise BadFileError("write on closed pipe end")
        pipe = self.pipe
        if not pipe.read_open:
            raise BrokenPipeSimError("write to pipe with closed read end")
        if pipe.space == 0:
            return WOULD_BLOCK
        accept = min(len(data), pipe.space)
        pipe.buffer.extend(data[:accept])
        pipe.bytes_written += accept
        peer = self._peer_getter()
        if peer is not None:
            peer.notify()
        return accept

    def close(self) -> None:
        """Close the write end; the reader sees EOF after draining."""
        if self.closed:
            return
        self.closed = True
        self.pipe.write_open = False
        peer = self._peer_getter()
        if peer is not None:
            peer.notify()


def make_pipe(capacity: int = 4096) -> tuple[PipeReadEnd, PipeWriteEnd]:
    """Create a FIFO; returns ``(read_end, write_end)``."""
    pipe = SimPipe(capacity)
    ends: dict = {}
    read_end = PipeReadEnd(pipe, lambda: ends.get("w"))
    write_end = PipeWriteEnd(pipe, lambda: ends.get("r"))
    ends["r"] = read_end
    ends["w"] = write_end
    return read_end, write_end
