"""Readiness plumbing shared by pipes, sockets, and the epoll device.

A :class:`Pollable` reports a readiness mask (``EVENT_READ``/``EVENT_WRITE``
bits) and holds one-shot waiters: ``(mask, callback)`` pairs fired — and
removed — when the object's state change makes any requested bit ready.
The epoll simulation and the kernel-thread baseline both build on this.
"""

from __future__ import annotations

from typing import Callable

from ..core.events import EVENT_READ, EVENT_WRITE  # noqa: F401 - re-export

__all__ = ["Pollable", "Waiter"]


class Waiter:
    """A one-shot readiness subscription."""

    __slots__ = ("mask", "callback", "active")

    def __init__(self, mask: int, callback: Callable[[int], None]) -> None:
        self.mask = mask
        self.callback = callback
        self.active = True

    def cancel(self) -> None:
        """Deactivate without firing (idempotent)."""
        self.active = False
        self.callback = None


class Pollable:
    """Base class managing readiness waiters."""

    def __init__(self) -> None:
        self._waiters: list[Waiter] = []

    def poll(self) -> int:
        """Current readiness mask; subclasses override."""
        raise NotImplementedError

    def add_waiter(self, mask: int, callback: Callable[[int], None]) -> Waiter:
        """Fire ``callback(ready_mask)`` once, when any bit of ``mask`` is
        ready.  Fires immediately (synchronously) if already ready."""
        ready = self.poll() & mask
        waiter = Waiter(mask, callback)
        if ready:
            waiter.active = False
            callback(ready)
            return waiter
        self._waiters.append(waiter)
        return waiter

    def notify(self) -> None:
        """Re-check readiness and fire matching waiters (one-shot)."""
        if not self._waiters:
            return
        ready = self.poll()
        if not ready:
            return
        pending = self._waiters
        keep: list[Waiter] = []
        fired: list[tuple[Waiter, int]] = []
        for waiter in pending:
            if not waiter.active:
                continue
            hit = ready & waiter.mask
            if hit:
                waiter.active = False
                fired.append((waiter, hit))
            else:
                keep.append(waiter)
        self._waiters = keep
        for waiter, hit in fired:
            callback = waiter.callback
            waiter.callback = None
            callback(hit)

    @property
    def waiter_count(self) -> int:
        """Number of live subscriptions (for tests and stats)."""
        return sum(1 for w in self._waiters if w.active)
