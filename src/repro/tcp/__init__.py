"""An application-level TCP stack (paper §4.8), from scratch.

"The end-to-end design philosophy of TCP suggests that the protocol can be
implemented inside the application, but it is often difficult due to the
event-driven nature of TCP.  In our hybrid programming model, the ability to
combine events and threads makes it practical to implement transport
protocols like TCP at the application-level in an elegant and type-safe
way."

The stack runs over lossy simulated packet links
(:class:`repro.simos.net.PacketLink`) and provides reliable, ordered byte
streams:

* :mod:`repro.tcp.packet` — segment encode/decode with checksums;
* :mod:`repro.tcp.iovec` — zero-copy I/O vectors (§5.2's buffers);
* :mod:`repro.tcp.rtt` — Jacobson/Karels RTT estimation, Karn's rule;
* :mod:`repro.tcp.congestion` — Reno (slow start, congestion avoidance,
  fast retransmit/recovery);
* :mod:`repro.tcp.window` — send/receive sliding windows and reassembly;
* :mod:`repro.tcp.tcb` — the transmission control block and state enum;
* :mod:`repro.tcp.stack` — the engine: demux, state machine, timers
  (the paper's ``worker_tcp_input`` / ``worker_tcp_timer`` loops);
* :mod:`repro.tcp.socket_api` — monadic sockets over ``sys_tcp``, giving
  the same high-level interface as the standard socket wrappers, so the
  web server switches stacks "by editing one line of code".
"""

from .packet import Segment, FLAG_ACK, FLAG_FIN, FLAG_PSH, FLAG_RST, FLAG_SYN
from .stack import TcpParams, TcpStack, TcpError, ConnectionReset
from .socket_api import TcpSockets, install_tcp

__all__ = [
    "Segment",
    "FLAG_SYN", "FLAG_ACK", "FLAG_FIN", "FLAG_RST", "FLAG_PSH",
    "TcpStack", "TcpParams", "TcpError", "ConnectionReset",
    "TcpSockets", "install_tcp",
]
