"""TCP Reno congestion control.

Slow start, congestion avoidance, fast retransmit and fast recovery
(RFC 5681 shape), in units of bytes:

* slow start: ``cwnd += mss`` per new ACK, until ``ssthresh``;
* congestion avoidance: ``cwnd += mss*mss/cwnd`` per new ACK;
* 3 duplicate ACKs: ``ssthresh = flight/2``, ``cwnd = ssthresh + 3*mss``,
  retransmit the lost segment, inflate by ``mss`` per further dup ACK;
* new ACK in recovery: deflate to ``ssthresh`` (exit recovery);
* timeout: ``ssthresh = flight/2``, ``cwnd = 1*mss``, back to slow start.
"""

from __future__ import annotations

__all__ = ["RenoCongestion"]

SLOW_START = "slow_start"
CONGESTION_AVOIDANCE = "congestion_avoidance"
FAST_RECOVERY = "fast_recovery"


class RenoCongestion:
    """Per-connection Reno state, in bytes."""

    __slots__ = ("mss", "cwnd", "ssthresh", "state", "dupacks",
                 "fast_retransmits", "timeouts")

    def __init__(self, mss: int, initial_window_segments: int = 2) -> None:
        self.mss = mss
        self.cwnd = initial_window_segments * mss
        self.ssthresh = 64 * 1024
        self.state = SLOW_START
        self.dupacks = 0
        self.fast_retransmits = 0
        self.timeouts = 0

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def on_new_ack(self, acked_bytes: int, flight_bytes: int) -> None:
        """A cumulative ACK advanced ``snd_una`` by ``acked_bytes``."""
        self.dupacks = 0
        if self.state == FAST_RECOVERY:
            # Full window deflation on recovery exit.
            self.cwnd = self.ssthresh
            self.state = (
                SLOW_START if self.cwnd < self.ssthresh
                else CONGESTION_AVOIDANCE
            )
            return
        if self.state == SLOW_START:
            # Appropriate Byte Counting (RFC 3465, L=2): grow by the bytes
            # acknowledged, so delayed ACKs do not halve the ramp rate.
            self.cwnd += min(acked_bytes, 2 * self.mss)
            if self.cwnd >= self.ssthresh:
                self.state = CONGESTION_AVOIDANCE
        else:
            self.cwnd += max(1, self.mss * self.mss // self.cwnd)

    def on_dup_ack(self, flight_bytes: int) -> bool:
        """A duplicate ACK arrived; returns True when the caller should
        fast-retransmit (the third duplicate)."""
        if self.state == FAST_RECOVERY:
            # Window inflation: each dup ACK means a segment left the net.
            self.cwnd += self.mss
            return False
        self.dupacks += 1
        if self.dupacks == 3:
            self.ssthresh = max(flight_bytes // 2, 2 * self.mss)
            self.cwnd = self.ssthresh + 3 * self.mss
            self.state = FAST_RECOVERY
            self.fast_retransmits += 1
            return True
        return False

    def on_timeout(self, flight_bytes: int) -> None:
        """Retransmission timer fired: collapse to slow start."""
        self.ssthresh = max(flight_bytes // 2, 2 * self.mss)
        self.cwnd = self.mss
        self.state = SLOW_START
        self.dupacks = 0
        self.timeouts += 1

    @property
    def window(self) -> int:
        """Current congestion window in bytes."""
        return int(self.cwnd)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Reno {self.state} cwnd={int(self.cwnd)} "
            f"ssthresh={int(self.ssthresh)}>"
        )
