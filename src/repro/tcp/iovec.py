"""Zero-copy I/O vectors.

The paper's TCP stack "is a zero-copy implementation; it uses IO vectors to
represent data buffers indirectly" (§5.2).  An :class:`IoVec` is a list of
``memoryview`` slices: appending, slicing, and consuming from the front
never copy payload bytes — materialization happens only at the wire
boundary (or when the application asks for contiguous bytes).
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["IoVec"]


class IoVec:
    """A queue of byte slices with copy-free slicing semantics."""

    __slots__ = ("_chunks", "_length")

    def __init__(self, data: bytes | None = None) -> None:
        self._chunks: list[memoryview] = []
        self._length = 0
        if data:
            self.append(data)

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def append(self, data: bytes | memoryview) -> None:
        """Add ``data`` at the tail (no copy: stores a view)."""
        view = memoryview(data)
        if len(view) == 0:
            return
        self._chunks.append(view)
        self._length += len(view)

    def extend(self, datas: Iterable[bytes]) -> None:
        """Append each element of ``datas``."""
        for data in datas:
            self.append(data)

    def peek(self, nbytes: int) -> "IoVec":
        """A view of the first ``nbytes`` bytes (no copy)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        out = IoVec()
        remaining = min(nbytes, self._length)
        for chunk in self._chunks:
            if remaining <= 0:
                break
            take = min(len(chunk), remaining)
            out._chunks.append(chunk[:take])
            out._length += take
            remaining -= take
        return out

    def slice(self, start: int, nbytes: int) -> "IoVec":
        """A view of ``nbytes`` bytes beginning at ``start`` (no copy)."""
        if start < 0 or nbytes < 0:
            raise ValueError("start and nbytes must be >= 0")
        out = IoVec()
        skip = start
        remaining = min(nbytes, max(0, self._length - start))
        for chunk in self._chunks:
            if remaining <= 0:
                break
            if skip >= len(chunk):
                skip -= len(chunk)
                continue
            usable = chunk[skip:]
            skip = 0
            take = min(len(usable), remaining)
            out._chunks.append(usable[:take])
            out._length += take
            remaining -= take
        return out

    def consume(self, nbytes: int) -> None:
        """Drop ``nbytes`` bytes from the front (no copy)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        remaining = min(nbytes, self._length)
        self._length -= remaining
        while remaining > 0:
            head = self._chunks[0]
            if len(head) <= remaining:
                remaining -= len(head)
                self._chunks.pop(0)
            else:
                self._chunks[0] = head[remaining:]
                remaining = 0

    def to_bytes(self) -> bytes:
        """Materialize as contiguous bytes (the only copying operation)."""
        return b"".join(bytes(chunk) for chunk in self._chunks)

    @property
    def chunk_count(self) -> int:
        """Number of underlying slices (for zero-copy assertions)."""
        return len(self._chunks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<IoVec {self._length}B in {len(self._chunks)} chunks>"
