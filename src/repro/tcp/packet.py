"""TCP segments: flags, wire encoding, and the Internet checksum.

Segments travel the simulated links as Python objects (``wire_size`` gives
the modelled on-wire cost, header + payload), but they also encode to and
decode from real bytes with a real ones'-complement checksum — the test
suite uses this to verify that corruption is detectable, and it keeps the
stack honest about every field it claims to implement.
"""

from __future__ import annotations

import struct

__all__ = [
    "FLAG_SYN",
    "FLAG_ACK",
    "FLAG_FIN",
    "FLAG_RST",
    "FLAG_PSH",
    "HEADER_BYTES",
    "Segment",
    "checksum",
    "ChecksumError",
]

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10

#: Modelled header overhead per segment: 20 (IP) + 20 (TCP).
HEADER_BYTES = 40

_HEADER_STRUCT = struct.Struct("!HHIIBBHHH")
# src_port, dst_port, seq, ack, data_offset_reserved, flags, window,
# checksum, urgent(unused, always 0)


class ChecksumError(ValueError):
    """Segment failed checksum verification on decode."""


def checksum(data: bytes) -> int:
    """RFC 1071 ones'-complement checksum over ``data``."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


class Segment:
    """One TCP segment."""

    __slots__ = (
        "src_port",
        "dst_port",
        "seq",
        "ack",
        "flags",
        "window",
        "payload",
    )

    def __init__(
        self,
        src_port: int,
        dst_port: int,
        seq: int,
        ack: int,
        flags: int,
        window: int,
        payload: bytes = b"",
    ) -> None:
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq % (1 << 32)
        self.ack = ack % (1 << 32)
        self.flags = flags
        self.window = window
        self.payload = payload

    # ------------------------------------------------------------------
    # Flag helpers
    # ------------------------------------------------------------------
    @property
    def syn(self) -> bool:
        return bool(self.flags & FLAG_SYN)

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & FLAG_ACK)

    @property
    def fin(self) -> bool:
        return bool(self.flags & FLAG_FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & FLAG_RST)

    @property
    def wire_size(self) -> int:
        """Modelled bytes on the wire (header + payload)."""
        return HEADER_BYTES + len(self.payload)

    @property
    def seg_len(self) -> int:
        """Sequence space consumed: payload plus SYN/FIN phantom bytes."""
        length = len(self.payload)
        if self.syn:
            length += 1
        if self.fin:
            length += 1
        return length

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        """Serialize with a valid checksum."""
        header = _HEADER_STRUCT.pack(
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            (5 << 4),
            self.flags,
            min(self.window, 0xFFFF),
            0,
            0,
        )
        value = checksum(header + self.payload)
        header = header[:16] + struct.pack("!H", value) + header[18:]
        return header + self.payload

    @classmethod
    def decode(cls, data: bytes) -> "Segment":
        """Parse bytes; raises :class:`ChecksumError` on corruption."""
        if len(data) < _HEADER_STRUCT.size:
            raise ValueError("segment shorter than header")
        (
            src_port,
            dst_port,
            seq,
            ack,
            _offset,
            flags,
            window,
            stored_sum,
            _urgent,
        ) = _HEADER_STRUCT.unpack_from(data)
        payload = data[_HEADER_STRUCT.size:]
        zeroed = data[:16] + b"\x00\x00" + data[18:]
        if checksum(zeroed) != stored_sum:
            raise ChecksumError("TCP checksum mismatch")
        return cls(src_port, dst_port, seq, ack, flags, window, payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = []
        for bit, name in (
            (FLAG_SYN, "SYN"),
            (FLAG_ACK, "ACK"),
            (FLAG_FIN, "FIN"),
            (FLAG_RST, "RST"),
            (FLAG_PSH, "PSH"),
        ):
            if self.flags & bit:
                names.append(name)
        return (
            f"<Segment {self.src_port}->{self.dst_port} "
            f"{'|'.join(names) or 'none'} seq={self.seq} ack={self.ack} "
            f"win={self.window} len={len(self.payload)}>"
        )


def seq_lt(a: int, b: int) -> bool:
    """Sequence-number comparison with 32-bit wraparound (RFC 793)."""
    return ((a - b) & 0xFFFFFFFF) > 0x7FFFFFFF


def seq_le(a: int, b: int) -> bool:
    """``a <= b`` in sequence space."""
    return a == b or seq_lt(a, b)


def seq_add(a: int, n: int) -> int:
    """Advance a sequence number with wraparound."""
    return (a + n) & 0xFFFFFFFF


def seq_sub(a: int, b: int) -> int:
    """Distance from ``b`` to ``a`` in sequence space."""
    return (a - b) & 0xFFFFFFFF


__all__ += ["seq_lt", "seq_le", "seq_add", "seq_sub"]
