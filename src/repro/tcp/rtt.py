"""Round-trip-time estimation: Jacobson/Karels with Karn's rule.

Implements the standard RTO computation (RFC 6298 shape):

* ``srtt = (1-alpha)*srtt + alpha*sample``       (alpha = 1/8)
* ``rttvar = (1-beta)*rttvar + beta*|srtt-sample|`` (beta = 1/4)
* ``rto = srtt + 4*rttvar``, clamped to [min_rto, max_rto]
* exponential backoff on timeout; Karn's rule — never sample a
  retransmitted segment — is enforced by the caller (the stack only times
  segments sent exactly once).
"""

from __future__ import annotations

__all__ = ["RttEstimator"]

ALPHA = 1.0 / 8.0
BETA = 1.0 / 4.0


class RttEstimator:
    """Adaptive retransmission-timeout estimation."""

    __slots__ = ("srtt", "rttvar", "rto", "min_rto", "max_rto", "samples")

    def __init__(
        self,
        initial_rto: float = 1.0,
        min_rto: float = 0.2,
        max_rto: float = 60.0,
    ) -> None:
        self.srtt: float | None = None
        self.rttvar = 0.0
        self.rto = initial_rto
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.samples = 0

    def sample(self, rtt: float) -> None:
        """Fold one measured round trip into the estimate."""
        if rtt < 0:
            raise ValueError("rtt must be >= 0")
        self.samples += 1
        if self.srtt is None:
            # First measurement (RFC 6298 §2.2).
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = (1 - BETA) * self.rttvar + BETA * abs(self.srtt - rtt)
            self.srtt = (1 - ALPHA) * self.srtt + ALPHA * rtt
        self.rto = self._clamp(self.srtt + 4.0 * self.rttvar)

    def backoff(self) -> None:
        """Double the RTO after a retransmission timeout."""
        self.rto = self._clamp(self.rto * 2.0)

    def _clamp(self, value: float) -> float:
        return max(self.min_rto, min(self.max_rto, value))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RttEstimator srtt={self.srtt} rto={self.rto:.3f}>"
