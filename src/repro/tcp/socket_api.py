"""Monadic sockets over the application-level TCP stack.

"A library (written in the monadic thread language) hides the ``sys_tcp``
call and provides the same high-level programming interfaces as standard
socket operations" (§4.8).  :class:`TcpSockets` is that library: the web
server code runs unchanged over kernel-style sim sockets or over this
stack — the "editing one line of code" claim, which the A4 ablation
exercises.

``install_tcp`` registers the ``SYS_TCP`` handler on a scheduler.  The
handler is a shared dispatcher: each operation names its stack (directly
for ``listen``/``connect``, through the listener/connection object
otherwise), so several hosts' stacks can coexist on one scheduler — the
benchmarks run client and server hosts in one simulated world.
"""

from __future__ import annotations

from typing import Any

from ..core.do_notation import do
from ..core.exceptions import UnsupportedSyscallError
from ..core.monad import M
from ..core.scheduler import Scheduler, TCB
from ..core.syscalls import sys_tcp
from ..core.trace import SysTcp, SysThrow, Thunk
from .stack import TcpStack
from .tcb import TcpConn, TcpListener

__all__ = ["TcpSockets", "install_tcp", "handle_sys_tcp"]


def install_tcp(sched: Scheduler, stack: TcpStack) -> "TcpSockets":
    """Register the shared ``SYS_TCP`` dispatcher on ``sched`` and return
    the monadic socket API bound to ``stack``."""
    sched.register_syscall(SysTcp, handle_sys_tcp)
    return TcpSockets(stack)


class TcpSockets:
    """Blocking-style socket operations as monadic computations."""

    def __init__(self, stack: TcpStack) -> None:
        self.stack = stack

        @do
        def _recv_exact(conn, nbytes):
            chunks = []
            remaining = nbytes
            while remaining > 0:
                data = yield self.recv(conn, remaining)
                if not data:
                    raise ConnectionError(
                        f"EOF with {remaining} of {nbytes} bytes unread"
                    )
                chunks.append(data)
                remaining -= len(data)
            return b"".join(chunks)

        @do
        def _recv_until(conn, delimiter, max_bytes):
            buffer = bytearray()
            while True:
                index = buffer.find(delimiter)
                if index >= 0:
                    return bytes(buffer), index
                if len(buffer) >= max_bytes:
                    raise ValueError(
                        f"delimiter not found within {max_bytes} bytes"
                    )
                data = yield self.recv(conn, 4096)
                if not data:
                    raise ConnectionError("EOF before delimiter")
                buffer.extend(data)

        self._recv_exact = _recv_exact
        self._recv_until = _recv_until

    # ------------------------------------------------------------------
    # Monadic operations
    # ------------------------------------------------------------------
    def listen(self, port: int, backlog: int = 128) -> M:
        """Open a listening socket; resumes with the listener."""
        return sys_tcp("listen", self.stack, port, backlog)

    def accept(self, listener: TcpListener) -> M:
        """Block until a connection is established; resumes with it."""
        return sys_tcp("accept", listener)

    def connect(self, remote_addr: str, remote_port: int) -> M:
        """Active open; resumes with the established connection."""
        return sys_tcp("connect", self.stack, remote_addr, remote_port)

    def send_v(self, conn: TcpConn, bufs) -> M:
        """Gathered send: every buffer in order, enqueued as iovec slices
        in the stack (no join); resumes with the total byte count."""
        return sys_tcp("sendv", conn, bufs)

    def send(self, conn: TcpConn, data: bytes) -> M:
        """Send all of ``data`` (flow-controlled); resumes with its length."""
        return sys_tcp("send", conn, data)

    def recv(self, conn: TcpConn, nbytes: int) -> M:
        """Receive up to ``nbytes``; resumes with ``b""`` at EOF."""
        return sys_tcp("recv", conn, nbytes)

    def recv_exact(self, conn: TcpConn, nbytes: int) -> M:
        """Receive exactly ``nbytes`` or raise ``ConnectionError``."""
        return self._recv_exact(conn, nbytes)

    def recv_until(self, conn: TcpConn, delimiter: bytes,
                   max_bytes: int = 65536) -> M:
        """Receive until ``delimiter``; resumes with ``(buffer, index)``."""
        return self._recv_until(conn, delimiter, max_bytes)

    def close(self, conn: TcpConn) -> M:
        """Orderly close (FIN after queued data)."""
        return sys_tcp("close", conn)

    def abort(self, conn: TcpConn) -> M:
        """Hard close (RST)."""
        return sys_tcp("abort", conn)


def handle_sys_tcp(sched: Scheduler, tcb: TCB, node: SysTcp) -> Thunk | None:
    """The shared ``SYS_TCP`` scheduler handler."""
    op = node.op
    cont = node.cont

    if op == "listen":
        stack, port, backlog = node.args
        listener = stack.listen(port, backlog)
        return lambda: cont(listener)

    if op == "close":
        (conn,) = node.args
        conn.stack.close(conn)
        return lambda: cont(None)

    if op == "abort":
        (conn,) = node.args
        conn.stack.abort(conn)
        return lambda: cont(None)

    # Blocking operations: park, resume from the stack's callback.
    tcb.state = "blocked"

    def resume(value: Any, error: BaseException | None) -> None:
        if error is not None:
            sched.resume_error(tcb, error)
        else:
            sched.resume_value(tcb, cont, value)

    if op == "accept":
        (listener,) = node.args
        listener.stack.accept(listener, resume)
    elif op == "connect":
        stack, remote_addr, remote_port = node.args
        stack.connect(remote_addr, remote_port, resume)
    elif op == "send":
        conn, data = node.args
        conn.stack.send(conn, data, resume)
    elif op == "sendv":
        conn, bufs = node.args
        conn.stack.sendv(conn, bufs, resume)
    elif op == "recv":
        conn, nbytes = node.args
        conn.stack.recv(conn, nbytes, resume)
    else:
        tcb.state = "running"
        exc = UnsupportedSyscallError(f"unknown sys_tcp op {op!r}")
        return lambda: SysThrow(exc)
    return None
