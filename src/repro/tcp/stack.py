"""The TCP engine: demux, state machine, transmit pump, timers.

One :class:`TcpStack` is one host's TCP layer.  Incoming segments arrive
through :meth:`TcpStack.on_packet` (the paper's ``worker_tcp_input`` loop);
timers run on the shared virtual clock (``worker_tcp_timer``); outgoing
segments leave through a transmit function wired to a
:class:`~repro.simos.net.PacketLink`.

The implementation covers the feature set the paper's server needs —
three-way handshake, reliable bidirectional data with cumulative ACKs,
sliding windows with zero-window probing, Jacobson/Karels RTO with Karn's
rule, Reno congestion control with fast retransmit/recovery, orderly FIN
teardown with TIME_WAIT, and RST handling.  Urgent pointers are omitted;
the paper drops them too ("urgent pointers and active connection setup are
not needed").
"""

from __future__ import annotations

import random
from typing import Any, Callable

from ..simos.clock import VirtualClock
from .packet import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_RST,
    FLAG_SYN,
    Segment,
    seq_add,
    seq_le,
    seq_lt,
    seq_sub,
)
from .tcb import DATA_STATES, TcpConn, TcpListener
from .window import RecvWindow, SendWindow

__all__ = ["TcpParams", "TcpStack", "TcpError", "ConnectionReset",
           "ConnectionTimeout", "connect_stacks"]


class TcpError(OSError):
    """Base class for TCP-level errors surfaced to the application."""


class ConnectionReset(TcpError):
    """The peer sent RST (or the connection was aborted)."""


class ConnectionTimeout(TcpError):
    """Handshake or retransmission gave up."""


class TcpParams:
    """Stack tuning knobs."""

    def __init__(
        self,
        mss: int = 1460,
        recv_window: int = 64 * 1024,
        send_buffer: int = 64 * 1024,
        initial_rto: float = 1.0,
        min_rto: float = 0.2,
        max_rto: float = 60.0,
        max_handshake_attempts: int = 6,
        max_retransmits: int = 12,
        time_wait: float = 1.0,
        persist_interval: float = 0.5,
        segment_cpu: float = 40.0e-6,
        delayed_ack: bool = False,
        ack_delay: float = 0.04,
        nagle: bool = False,
    ) -> None:
        self.mss = mss
        self.recv_window = recv_window
        self.send_buffer = send_buffer
        self.initial_rto = initial_rto
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.max_handshake_attempts = max_handshake_attempts
        self.max_retransmits = max_retransmits
        self.time_wait = time_wait
        self.persist_interval = persist_interval
        #: CPU per segment sent or received: the NIC/interrupt path plus
        #: the application-level protocol processing (the paper reads
        #: packets through iptables queues — an extra copy per packet).
        #: Zero when the stack runs outside a CPU-accounted simulation.
        self.segment_cpu = segment_cpu
        #: RFC 1122 delayed ACKs: acknowledge every second full segment or
        #: after ``ack_delay``, piggybacking on outgoing data meanwhile.
        self.delayed_ack = delayed_ack
        self.ack_delay = ack_delay
        #: Nagle's algorithm: hold sub-MSS segments while data is in
        #: flight, coalescing small writes.
        self.nagle = nagle


class TcpStats:
    """Per-stack counters."""

    __slots__ = ("segments_sent", "segments_received", "bytes_sent",
                 "bytes_received", "retransmits", "rsts_sent",
                 "dup_acks_received", "fast_retransmits")

    def __init__(self) -> None:
        self.segments_sent = 0
        self.segments_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.retransmits = 0
        self.rsts_sent = 0
        self.dup_acks_received = 0
        self.fast_retransmits = 0


def _sent_quietly(_count, _error) -> None:
    """Waiter callback for the non-final buffers of a gathered send:
    completion and teardown are both reported through the final one."""


class TcpStack:
    """One host's application-level TCP."""

    def __init__(
        self,
        clock: VirtualClock,
        local_addr: str,
        params: TcpParams | None = None,
        seed: int = 0,
    ) -> None:
        self.clock = clock
        self.local_addr = local_addr
        self.params = params if params is not None else TcpParams()
        self.rng = random.Random(seed)
        self.listeners: dict[int, TcpListener] = {}
        self.connections: dict[tuple, TcpConn] = {}
        self.stats = TcpStats()
        self._ephemeral = 49152
        #: transmit(remote_addr, segment) — wired by ``connect_stacks`` or
        #: by the runtime adapter.
        self.transmit: Callable[[str, Segment], None] | None = None

    # ==================================================================
    # Application interface (callback level; the monadic layer wraps it)
    # ==================================================================
    def listen(self, port: int, backlog: int = 128) -> TcpListener:
        """Open a passive socket on ``port``."""
        if port in self.listeners:
            raise TcpError(f"port {port} already listening")
        listener = TcpListener(self, port, backlog)
        self.listeners[port] = listener
        return listener

    def accept(self, listener: TcpListener, cb: Callable) -> None:
        """Deliver an established connection to ``cb(conn, error)``."""
        if listener.accept_queue:
            listener.total_accepted += 1
            cb(listener.accept_queue.popleft(), None)
        else:
            listener.accept_waiters.append(cb)

    def connect(
        self, remote_addr: str, remote_port: int, cb: Callable
    ) -> TcpConn:
        """Active open; ``cb(conn, error)`` fires on establishment."""
        port = self._alloc_port()
        conn = TcpConn(self, port, remote_addr, remote_port)
        conn.iss = self.rng.randrange(0, 1 << 32)
        conn.connect_cb = cb
        conn.state = "SYN_SENT"
        self.connections[conn.key] = conn
        self._send_syn(conn)
        return conn

    def send(self, conn: TcpConn, data: bytes, cb: Callable) -> None:
        """Queue ``data``; ``cb(total, error)`` fires once all of it is in
        the send buffer (flow-controlled against buffer space)."""
        if conn.error is not None:
            cb(None, conn.error)
            return
        if conn.app_closed or conn.state not in DATA_STATES:
            cb(None, TcpError(f"send in state {conn.state}"))
            return
        conn.send_waiters.append([data, 0, cb])
        self._drain_send_waiters(conn)
        self._pump(conn)

    def sendv(self, conn: TcpConn, bufs, cb: Callable) -> None:
        """Gathered send: queue every buffer in order; ``cb(total, error)``
        fires once all of them are in the send buffer.

        The buffers are enqueued as memoryview slices straight into the
        send window's iovec — never joined, never copied in the stack
        (segment payloads slice across buffer boundaries on the way
        out).  An error before the final buffer drains errors ``cb``
        exactly once, through the stack's usual waiter teardown.
        """
        if conn.error is not None:
            cb(None, conn.error)
            return
        if conn.app_closed or conn.state not in DATA_STATES:
            cb(None, TcpError(f"send in state {conn.state}"))
            return
        views = [memoryview(buf) for buf in bufs if len(buf)]
        if not views:
            cb(0, None)
            return
        total = sum(len(view) for view in views)
        for view in views[:-1]:
            conn.send_waiters.append([view, 0, _sent_quietly])

        def done(_count, error):
            cb(None if error is not None else total, error)

        conn.send_waiters.append([views[-1], 0, done])
        self._drain_send_waiters(conn)
        self._pump(conn)

    def recv(self, conn: TcpConn, nbytes: int, cb: Callable) -> None:
        """Deliver up to ``nbytes`` via ``cb(data, error)``; ``b""`` at
        orderly EOF."""
        if conn.rcv is not None and conn.rcv.available > 0:
            data = conn.rcv.read(nbytes)
            self._maybe_window_update(conn)
            cb(data, None)
            return
        if conn.error is not None:
            cb(None, conn.error)
            return
        if conn.fin_received or conn.state in ("CLOSED", "TIME_WAIT"):
            cb(b"", None)
            return
        conn.recv_waiters.append((nbytes, cb))

    def close(self, conn: TcpConn) -> None:
        """Orderly close: FIN after queued data drains."""
        if conn.app_closed or conn.state == "CLOSED":
            return
        conn.app_closed = True
        if conn.state in ("SYN_SENT", "SYN_RCVD"):
            self._destroy(conn, ConnectionReset("closed during handshake"))
            return
        self._pump(conn)

    def abort(self, conn: TcpConn) -> None:
        """Hard close: RST to the peer, error every waiter."""
        if conn.state != "CLOSED":
            self._emit(
                conn.remote_addr,
                Segment(conn.local_port, conn.remote_port,
                        conn.snd.snd_nxt if conn.snd else conn.iss,
                        0, FLAG_RST, 0),
            )
            self.stats.rsts_sent += 1
        self._destroy(conn, ConnectionReset("connection aborted"))

    def close_listener(self, listener: TcpListener) -> None:
        """Stop accepting on a port."""
        listener.closed = True
        self.listeners.pop(listener.port, None)
        while listener.accept_waiters:
            cb = listener.accept_waiters.popleft()
            cb(None, TcpError("listener closed"))

    # ==================================================================
    # Segment input (worker_tcp_input)
    # ==================================================================
    def on_packet(self, segment: Segment, src_addr: str) -> None:
        """Process one incoming segment from ``src_addr``."""
        self.stats.segments_received += 1
        if self.params.segment_cpu:
            self.clock.consume(self.params.segment_cpu)
        key = (segment.dst_port, src_addr, segment.src_port)
        conn = self.connections.get(key)
        if conn is not None:
            self._segment_arrives(conn, segment)
            return
        listener = self.listeners.get(segment.dst_port)
        if listener is not None and segment.syn and not segment.is_ack:
            self._passive_open(listener, segment, src_addr)
            return
        if not segment.rst:
            # No socket: refuse.
            self._emit(
                src_addr,
                Segment(segment.dst_port, segment.src_port,
                        segment.ack, seq_add(segment.seq, segment.seg_len),
                        FLAG_RST | FLAG_ACK, 0),
            )
            self.stats.rsts_sent += 1

    # ------------------------------------------------------------------
    # Passive open
    # ------------------------------------------------------------------
    def _passive_open(
        self, listener: TcpListener, segment: Segment, src_addr: str
    ) -> None:
        if listener.closed or (
            len(listener.accept_queue) + listener.pending >= listener.backlog
        ):
            return  # drop: the client will retransmit its SYN
        listener.pending += 1
        conn = TcpConn(self, listener.port, src_addr, segment.src_port)
        conn.iss = self.rng.randrange(0, 1 << 32)
        conn.irs = segment.seq
        conn.parent_listener = listener
        conn.state = "SYN_RCVD"
        conn.rcv = RecvWindow(seq_add(segment.seq, 1), self.params.recv_window)
        self.connections[conn.key] = conn
        self._send_syn(conn, ack=True)

    def _send_syn(self, conn: TcpConn, ack: bool = False) -> None:
        conn.handshake_attempts += 1
        if conn.handshake_attempts > self.params.max_handshake_attempts:
            self._destroy(conn, ConnectionTimeout("handshake gave up"))
            return
        flags = FLAG_SYN | (FLAG_ACK if ack else 0)
        ack_num = conn.rcv.rcv_nxt if (ack and conn.rcv) else 0
        self._emit(
            conn.remote_addr,
            Segment(conn.local_port, conn.remote_port, conn.iss, ack_num,
                    flags, self.params.recv_window),
        )
        self._arm_retransmit(conn, conn.rtt.rto)
        conn.rtt.backoff()  # next attempt waits longer

    # ------------------------------------------------------------------
    # The state machine
    # ------------------------------------------------------------------
    def _segment_arrives(self, conn: TcpConn, seg: Segment) -> None:
        if seg.rst:
            self._destroy(conn, ConnectionReset("RST from peer"))
            return

        state = conn.state
        if state == "SYN_SENT":
            self._syn_sent(conn, seg)
            return
        if state == "SYN_RCVD":
            if seg.syn:
                # Duplicate SYN: re-ACK it.
                self._send_syn(conn, ack=True)
                return
            if seg.is_ack and seg.ack == seq_add(conn.iss, 1):
                self._establish(conn)
                # Fall through: the ACK may carry data.
            else:
                return
        if conn.state not in DATA_STATES and conn.state not in (
            "CLOSING", "LAST_ACK", "TIME_WAIT"
        ):
            return

        # --- ACK processing -------------------------------------------
        if seg.is_ack and conn.snd is not None:
            self._process_ack(conn, seg)
        if conn.state == "CLOSED":
            return

        # --- data processing ------------------------------------------
        advanced = False
        if seg.payload and conn.rcv is not None:
            if conn.rcv.advertised > 0 or seq_lt(seg.seq, conn.rcv.rcv_nxt):
                before = conn.rcv.rcv_nxt
                advanced = conn.rcv.accept(seg.seq, seg.payload)
                self.stats.bytes_received += seq_sub(conn.rcv.rcv_nxt, before)
            # else: zero window — drop; the sender's probe will recover.

        # --- FIN processing -------------------------------------------
        fin_advanced = False
        if seg.fin and conn.rcv is not None:
            fin_seq = seq_add(seg.seq, len(seg.payload))
            if fin_seq == conn.rcv.rcv_nxt and not conn.fin_received:
                conn.fin_received = True
                conn.rcv.rcv_nxt = seq_add(conn.rcv.rcv_nxt, 1)
                fin_advanced = True
                self._on_fin_received(conn)

        if advanced:
            self._wake_receivers(conn)

        # --- ACK generation -------------------------------------------
        if seg.fin or fin_advanced or (seg.payload and not advanced):
            # FINs and out-of-order data (dup-ACK signal) ACK immediately.
            self._ack_now(conn)
        elif seg.payload and advanced:
            if self.params.delayed_ack:
                self._ack_delayed(conn)
            else:
                self._ack_now(conn)
        elif conn.rcv is not None and seg.seq != conn.rcv.rcv_nxt:
            # Out-of-window segment (e.g. a zero-window probe): re-ACK.
            self._ack_now(conn)

        self._pump(conn)

    def _syn_sent(self, conn: TcpConn, seg: Segment) -> None:
        if seg.syn and seg.is_ack:
            if seg.ack != seq_add(conn.iss, 1):
                return  # bogus
            conn.irs = seg.seq
            conn.rcv = RecvWindow(seq_add(seg.seq, 1), self.params.recv_window)
            self._establish(conn)
            if conn.snd is not None:
                conn.snd.peer_window = seg.window
            self._send_ack(conn)
            self._pump(conn)
        elif seg.syn:
            # Simultaneous open.
            conn.irs = seg.seq
            conn.rcv = RecvWindow(seq_add(seg.seq, 1), self.params.recv_window)
            conn.state = "SYN_RCVD"
            conn.handshake_attempts = 0
            self._send_syn(conn, ack=True)

    def _establish(self, conn: TcpConn) -> None:
        conn.state = "ESTABLISHED"
        conn.handshake_attempts = 0
        self._cancel_retransmit(conn)
        from .congestion import RenoCongestion

        conn.snd = SendWindow(seq_add(conn.iss, 1), self.params.mss)
        conn.congestion = RenoCongestion(self.params.mss)
        conn.last_advertised = self.params.recv_window
        if conn.connect_cb is not None:
            cb, conn.connect_cb = conn.connect_cb, None
            cb(conn, None)
        if conn.parent_listener is not None:
            listener = conn.parent_listener
            conn.parent_listener = None
            listener.pending -= 1
            if listener.accept_waiters:
                listener.total_accepted += 1
                listener.accept_waiters.popleft()(conn, None)
            else:
                listener.accept_queue.append(conn)
        self._drain_send_waiters(conn)

    def _process_ack(self, conn: TcpConn, seg: Segment) -> None:
        snd = conn.snd
        old_window = snd.peer_window
        if snd.ack_is_new(seg.ack):
            acked, rtt_sample = snd.mark_acked(seg.ack, self.clock.now)
            snd.peer_window = seg.window
            conn.handshake_attempts = 0  # forward progress: reset give-up
            if rtt_sample is not None:
                conn.rtt.sample(rtt_sample)
            conn.congestion.on_new_ack(acked, snd.flight_size)
            if conn.fin_sent and not conn.fin_acked and seq_lt(
                conn.fin_seq, seg.ack
            ):
                conn.fin_acked = True
                self._on_fin_acked(conn)
            if snd.flight_size == 0:
                self._cancel_retransmit(conn)
            else:
                self._arm_retransmit(conn, conn.rtt.rto, restart=True)
            self._drain_send_waiters(conn)
        elif seg.ack == snd.snd_una and snd.flight_size > 0 and not seg.payload:
            self.stats.dup_acks_received += 1
            snd.peer_window = seg.window
            if conn.congestion.on_dup_ack(snd.flight_size):
                self._fast_retransmit(conn)
        else:
            snd.peer_window = seg.window
        if old_window == 0 and snd.peer_window > 0:
            self._cancel_persist(conn)

    def _on_fin_received(self, conn: TcpConn) -> None:
        if conn.state == "ESTABLISHED":
            conn.state = "CLOSE_WAIT"
        elif conn.state == "FIN_WAIT_1":
            conn.state = "CLOSING" if not conn.fin_acked else "TIME_WAIT"
        elif conn.state == "FIN_WAIT_2":
            conn.state = "TIME_WAIT"
        if conn.state == "TIME_WAIT":
            self._enter_time_wait(conn)
        # EOF for blocked readers (after buffered data drains).
        self._wake_receivers(conn)

    def _on_fin_acked(self, conn: TcpConn) -> None:
        if conn.state == "FIN_WAIT_1":
            conn.state = "FIN_WAIT_2"
        elif conn.state == "CLOSING":
            conn.state = "TIME_WAIT"
            self._enter_time_wait(conn)
        elif conn.state == "LAST_ACK":
            self._destroy(conn, None)

    def _enter_time_wait(self, conn: TcpConn) -> None:
        self._cancel_retransmit(conn)
        if conn.time_wait_timer is None:
            conn.time_wait_timer = self.clock.schedule(
                self.params.time_wait, lambda: self._destroy(conn, None)
            )

    # ==================================================================
    # Transmit path
    # ==================================================================
    def _pump(self, conn: TcpConn) -> None:
        """Send whatever the windows currently allow, then FIN if due."""
        if conn.snd is None or conn.state not in DATA_STATES:
            return
        snd = conn.snd
        cong = conn.congestion
        sent_any = False
        while True:
            payload = snd.next_segment_payload(cong.window)
            if payload is None:
                break
            if (
                self.params.nagle
                and len(payload) < self.params.mss
                and snd.flight_size > 0
            ):
                # Nagle: hold the runt until outstanding data is ACKed
                # (the ACK re-enters _pump and releases it).
                break
            data = payload.to_bytes()  # the single wire-boundary copy
            seq = snd.mark_sent(len(data), self.clock.now)
            self._emit_data(conn, seq, data)
            sent_any = True
        if sent_any:
            self._arm_retransmit(conn, conn.rtt.rto)
        # Zero-window probing.
        if (
            snd.peer_window == 0
            and snd.unsent > 0
            and conn.persist_timer is None
        ):
            self._arm_persist(conn)
        # FIN once every queued byte is out and the app closed.
        if (
            conn.app_closed
            and not conn.fin_sent
            and snd.unsent == 0
            and not conn.send_waiters
        ):
            self._send_fin(conn)

    def _emit_data(self, conn: TcpConn, seq: int, data: bytes) -> None:
        # Data segments carry the current ACK: a pending delayed ACK rides
        # along for free.
        self._cancel_delack(conn)
        self.stats.bytes_sent += len(data)
        self._emit(
            conn.remote_addr,
            Segment(conn.local_port, conn.remote_port, seq,
                    conn.rcv.rcv_nxt, FLAG_ACK,
                    conn.rcv.advertised, data),
        )
        conn.last_advertised = conn.rcv.advertised

    def _send_fin(self, conn: TcpConn) -> None:
        conn.fin_sent = True
        conn.fin_seq = conn.snd.snd_nxt
        conn.snd.snd_nxt = seq_add(conn.snd.snd_nxt, 1)
        if conn.state == "ESTABLISHED":
            conn.state = "FIN_WAIT_1"
        elif conn.state == "CLOSE_WAIT":
            conn.state = "LAST_ACK"
        self._emit(
            conn.remote_addr,
            Segment(conn.local_port, conn.remote_port, conn.fin_seq,
                    conn.rcv.rcv_nxt, FLAG_FIN | FLAG_ACK,
                    conn.rcv.advertised),
        )
        self._arm_retransmit(conn, conn.rtt.rto)

    def _ack_now(self, conn: TcpConn) -> None:
        """Send an immediate ACK, clearing any pending delayed ACK."""
        self._cancel_delack(conn)
        self._send_ack(conn)

    def _ack_delayed(self, conn: TcpConn) -> None:
        """RFC 1122: ACK at least every second segment, else after delay."""
        conn.delack_segments += 1
        if conn.delack_segments >= 2:
            self._ack_now(conn)
            return
        if conn.delack_timer is None:
            conn.delack_timer = self.clock.schedule(
                self.params.ack_delay, lambda: self._on_delack_timeout(conn)
            )

    def _on_delack_timeout(self, conn: TcpConn) -> None:
        conn.delack_timer = None
        if conn.state != "CLOSED" and conn.delack_segments > 0:
            conn.delack_segments = 0
            self._send_ack(conn)

    def _cancel_delack(self, conn: TcpConn) -> None:
        conn.delack_segments = 0
        if conn.delack_timer is not None:
            conn.delack_timer.cancel()
            conn.delack_timer = None

    def _send_ack(self, conn: TcpConn) -> None:
        if conn.rcv is None:
            return
        self._emit(
            conn.remote_addr,
            Segment(conn.local_port, conn.remote_port,
                    conn.snd.snd_nxt if conn.snd else seq_add(conn.iss, 1),
                    conn.rcv.rcv_nxt, FLAG_ACK, conn.rcv.advertised),
        )
        conn.last_advertised = conn.rcv.advertised

    def _maybe_window_update(self, conn: TcpConn) -> None:
        """After an app read: reopen a window the peer saw as (near) zero."""
        if conn.rcv is None or conn.state == "CLOSED":
            return
        if (
            conn.last_advertised < self.params.mss
            and conn.rcv.advertised >= self.params.mss
        ):
            self._send_ack(conn)

    def _emit(self, remote_addr: str, segment: Segment) -> None:
        self.stats.segments_sent += 1
        if self.params.segment_cpu:
            self.clock.consume(self.params.segment_cpu)
        if self.transmit is None:
            raise TcpError("stack has no transmit function wired")
        self.transmit(remote_addr, segment)

    # ==================================================================
    # Timers (worker_tcp_timer)
    # ==================================================================
    def _arm_retransmit(
        self, conn: TcpConn, delay: float, restart: bool = False
    ) -> None:
        if conn.retransmit_timer is not None:
            if not restart:
                return
            conn.retransmit_timer.cancel()
        conn.retransmit_timer = self.clock.schedule(
            delay, lambda: self._on_retransmit_timeout(conn)
        )

    def _cancel_retransmit(self, conn: TcpConn) -> None:
        if conn.retransmit_timer is not None:
            conn.retransmit_timer.cancel()
            conn.retransmit_timer = None

    def _on_retransmit_timeout(self, conn: TcpConn) -> None:
        conn.retransmit_timer = None
        if conn.state in ("SYN_SENT", "SYN_RCVD"):
            self._send_syn(conn, ack=conn.state == "SYN_RCVD")
            return
        if conn.snd is None or conn.state == "CLOSED":
            return
        if conn.snd.flight_size == 0 and not (
            conn.fin_sent and not conn.fin_acked
        ):
            return  # stale timer
        conn.handshake_attempts += 1  # reused as a give-up counter
        if conn.handshake_attempts > self.params.max_retransmits:
            self._destroy(conn, ConnectionTimeout("too many retransmissions"))
            return
        self.stats.retransmits += 1
        conn.congestion.on_timeout(conn.snd.flight_size)
        conn.rtt.backoff()
        self._retransmit_head(conn)
        self._arm_retransmit(conn, conn.rtt.rto)

    def _fast_retransmit(self, conn: TcpConn) -> None:
        self.stats.fast_retransmits += 1
        self.stats.retransmits += 1
        self._retransmit_head(conn)
        self._arm_retransmit(conn, conn.rtt.rto, restart=True)

    def _retransmit_head(self, conn: TcpConn) -> None:
        payload = conn.snd.retransmit_payload()
        if payload is not None:
            data = payload.to_bytes()
            self._emit(
                conn.remote_addr,
                Segment(conn.local_port, conn.remote_port, conn.snd.snd_una,
                        conn.rcv.rcv_nxt, FLAG_ACK,
                        conn.rcv.advertised, data),
            )
        elif conn.fin_sent and not conn.fin_acked:
            self._emit(
                conn.remote_addr,
                Segment(conn.local_port, conn.remote_port, conn.fin_seq,
                        conn.rcv.rcv_nxt, FLAG_FIN | FLAG_ACK,
                        conn.rcv.advertised),
            )

    def _arm_persist(self, conn: TcpConn) -> None:
        conn.persist_timer = self.clock.schedule(
            max(conn.rtt.rto, self.params.persist_interval),
            lambda: self._on_persist_timeout(conn),
        )

    def _cancel_persist(self, conn: TcpConn) -> None:
        if conn.persist_timer is not None:
            conn.persist_timer.cancel()
            conn.persist_timer = None

    def _on_persist_timeout(self, conn: TcpConn) -> None:
        conn.persist_timer = None
        if conn.state == "CLOSED" or conn.snd is None:
            return
        if conn.snd.peer_window == 0 and conn.snd.unsent > 0:
            # Probe: a deliberately out-of-window segment; the peer ACKs
            # with its current window.
            self._emit(
                conn.remote_addr,
                Segment(conn.local_port, conn.remote_port,
                        seq_add(conn.snd.snd_una, -1 & 0xFFFFFFFF),
                        conn.rcv.rcv_nxt, FLAG_ACK, conn.rcv.advertised),
            )
            self._arm_persist(conn)
        elif conn.snd.unsent > 0:
            self._pump(conn)

    # ==================================================================
    # Application wakeups and teardown
    # ==================================================================
    def _wake_receivers(self, conn: TcpConn) -> None:
        while conn.recv_waiters and conn.readable_now:
            nbytes, cb = conn.recv_waiters.popleft()
            if conn.rcv is not None and conn.rcv.available > 0:
                data = conn.rcv.read(nbytes)
                self._maybe_window_update(conn)
                cb(data, None)
            elif conn.error is not None:
                cb(None, conn.error)
            else:  # FIN: orderly EOF
                cb(b"", None)

    def _drain_send_waiters(self, conn: TcpConn) -> None:
        if conn.snd is None or conn.state not in DATA_STATES:
            return
        while conn.send_waiters:
            entry = conn.send_waiters[0]
            data, offset, cb = entry
            space = self.params.send_buffer - len(conn.snd.buffer)
            if space <= 0:
                break
            take = min(space, len(data) - offset)
            conn.snd.enqueue(data[offset:offset + take])
            entry[1] = offset + take
            if entry[1] == len(data):
                conn.send_waiters.popleft()
                cb(len(data), None)
        self._pump(conn)

    def _destroy(self, conn: TcpConn, error: BaseException | None) -> None:
        if conn.state == "CLOSED":
            return
        conn.state = "CLOSED"
        conn.error = error
        if conn.parent_listener is not None:
            conn.parent_listener.pending -= 1
            conn.parent_listener = None
        self._cancel_retransmit(conn)
        self._cancel_persist(conn)
        self._cancel_delack(conn)
        if conn.time_wait_timer is not None:
            conn.time_wait_timer.cancel()
            conn.time_wait_timer = None
        self.connections.pop(conn.key, None)
        if conn.connect_cb is not None:
            cb, conn.connect_cb = conn.connect_cb, None
            cb(None, error or ConnectionReset("connection closed"))
        while conn.recv_waiters:
            _nbytes, cb = conn.recv_waiters.popleft()
            if error is not None:
                cb(None, error)
            else:
                cb(b"", None)
        while conn.send_waiters:
            _data, _offset, cb = conn.send_waiters.popleft()
            cb(None, error or ConnectionReset("connection closed"))

    # ------------------------------------------------------------------
    def _alloc_port(self) -> int:
        for _attempt in range(20000):
            port = self._ephemeral
            self._ephemeral += 1
            if self._ephemeral > 65535:
                self._ephemeral = 49152
            if not any(
                key[0] == port for key in self.connections
            ) and port not in self.listeners:
                return port
        raise TcpError("no free ephemeral ports")


def connect_stacks(stack_a: TcpStack, stack_b: TcpStack, duplex_link) -> None:
    """Wire two stacks over a :class:`~repro.simos.net.DuplexPacketLink`."""
    duplex_link.a_to_b.on_deliver = (
        lambda seg: stack_b.on_packet(seg, stack_a.local_addr)
    )
    duplex_link.b_to_a.on_deliver = (
        lambda seg: stack_a.on_packet(seg, stack_b.local_addr)
    )
    a_out, b_out = duplex_link.a_to_b, duplex_link.b_to_a

    def make_transmit(out_link, other_addr):
        def transmit(remote_addr: str, segment: Segment) -> None:
            if remote_addr != other_addr:
                raise TcpError(f"no route to {remote_addr!r}")
            out_link.send(segment)

        return transmit

    stack_a.transmit = make_transmit(a_out, stack_b.local_addr)
    stack_b.transmit = make_transmit(b_out, stack_a.local_addr)
