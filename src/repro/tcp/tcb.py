"""Transmission control blocks: per-connection and per-listener state.

State names follow RFC 793.  The TCB is pure state — every transition is
driven by :mod:`repro.tcp.stack`, keeping the protocol logic in one place
(and making TCBs printable/inspectable, which the tests rely on).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from .congestion import RenoCongestion
from .rtt import RttEstimator
from .window import RecvWindow, SendWindow

__all__ = ["TcpConn", "TcpListener", "STATES"]

STATES = (
    "CLOSED",
    "LISTEN",
    "SYN_SENT",
    "SYN_RCVD",
    "ESTABLISHED",
    "FIN_WAIT_1",
    "FIN_WAIT_2",
    "CLOSE_WAIT",
    "CLOSING",
    "LAST_ACK",
    "TIME_WAIT",
)

#: States in which the connection can carry data.
DATA_STATES = ("ESTABLISHED", "FIN_WAIT_1", "FIN_WAIT_2", "CLOSE_WAIT")


class TcpConn:
    """One connection's full state."""

    __slots__ = (
        "stack",
        "local_port",
        "remote_addr",
        "remote_port",
        "state",
        "snd",
        "rcv",
        "congestion",
        "rtt",
        "iss",
        "irs",
        "retransmit_timer",
        "persist_timer",
        "time_wait_timer",
        "handshake_attempts",
        "app_closed",
        "fin_sent",
        "fin_seq",
        "fin_acked",
        "fin_received",
        "error",
        "connect_cb",
        "recv_waiters",
        "send_waiters",
        "last_advertised",
        "parent_listener",
        "delack_timer",
        "delack_segments",
    )

    def __init__(
        self,
        stack: Any,
        local_port: int,
        remote_addr: str,
        remote_port: int,
    ) -> None:
        self.stack = stack
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self.state = "CLOSED"
        self.snd: SendWindow | None = None
        self.rcv: RecvWindow | None = None
        self.congestion: RenoCongestion | None = None
        self.rtt = RttEstimator(
            initial_rto=stack.params.initial_rto,
            min_rto=stack.params.min_rto,
            max_rto=stack.params.max_rto,
        )
        self.iss = 0
        self.irs = 0
        self.retransmit_timer = None
        self.persist_timer = None
        self.time_wait_timer = None
        self.handshake_attempts = 0
        self.app_closed = False
        self.fin_sent = False
        self.fin_seq = 0
        self.fin_acked = False
        self.fin_received = False
        self.error: BaseException | None = None
        # (value, error) callback for an active open.
        self.connect_cb: Callable | None = None
        # (nbytes, cb) pairs blocked on data.
        self.recv_waiters: deque = deque()
        # (data, cb) pairs blocked on send-buffer space.
        self.send_waiters: deque = deque()
        self.last_advertised = 0
        self.parent_listener: "TcpListener | None" = None
        # Delayed-ACK state (used when the stack enables delayed_ack).
        self.delack_timer = None
        self.delack_segments = 0

    @property
    def key(self) -> tuple:
        """Demux key: (local port, remote addr, remote port)."""
        return (self.local_port, self.remote_addr, self.remote_port)

    @property
    def readable_now(self) -> bool:
        """Whether a recv can complete without blocking."""
        return (
            (self.rcv is not None and self.rcv.available > 0)
            or self.fin_received
            or self.error is not None
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TcpConn {self.local_port}<->{self.remote_addr}:"
            f"{self.remote_port} {self.state}>"
        )


class TcpListener:
    """A passive socket: accept queue plus blocked accept callbacks."""

    __slots__ = ("stack", "port", "backlog", "accept_queue", "accept_waiters",
                 "closed", "total_accepted", "pending")

    def __init__(self, stack: Any, port: int, backlog: int) -> None:
        self.stack = stack
        self.port = port
        self.backlog = backlog
        self.accept_queue: deque[TcpConn] = deque()
        self.accept_waiters: deque[Callable] = deque()
        self.closed = False
        self.total_accepted = 0
        #: Connections in SYN_RCVD that will land in the accept queue;
        #: counted against the backlog, as real kernels do.
        self.pending = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TcpListener :{self.port} queued={len(self.accept_queue)}>"
