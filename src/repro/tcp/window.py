"""Send and receive sliding windows.

:class:`SendWindow` owns the retransmission buffer (an
:class:`~repro.tcp.iovec.IoVec`, so queued application data is never
copied until segmentation) and the ``snd_una``/``snd_nxt`` pointers.
:class:`RecvWindow` reassembles out-of-order segments into an in-order
byte queue and computes the advertised window.

Sequence arithmetic is 32-bit modular throughout (``seq_*`` helpers).
"""

from __future__ import annotations

from .iovec import IoVec
from .packet import seq_add, seq_le, seq_lt, seq_sub

__all__ = ["SendWindow", "RecvWindow"]


class SendWindow:
    """Sender-side state: unacknowledged data and transmit bookkeeping."""

    __slots__ = (
        "iss",
        "snd_una",
        "snd_nxt",
        "buffer",
        "peer_window",
        "mss",
        "timing_seq",
        "timing_sent_at",
        "timing_valid",
        "retransmitted_high",
    )

    def __init__(self, iss: int, mss: int) -> None:
        self.iss = iss
        self.snd_una = iss
        self.snd_nxt = iss
        # Bytes from snd_una onward: acked prefixes are consumed.
        self.buffer = IoVec()
        self.peer_window = mss
        self.mss = mss
        # Single-segment RTT timing (Karn's rule: invalidated on rexmit).
        self.timing_seq: int | None = None
        self.timing_sent_at = 0.0
        self.timing_valid = False
        self.retransmitted_high = iss

    # ------------------------------------------------------------------
    # Queueing and segmentation
    # ------------------------------------------------------------------
    def enqueue(self, data: bytes) -> None:
        """Append application data to the (zero-copy) send buffer."""
        self.buffer.append(data)

    @property
    def flight_size(self) -> int:
        """Bytes sent but not yet acknowledged."""
        return seq_sub(self.snd_nxt, self.snd_una)

    @property
    def unsent(self) -> int:
        """Bytes queued but never transmitted."""
        return len(self.buffer) - self.flight_size

    def usable_window(self, cwnd: int) -> int:
        """How many new bytes may be transmitted now."""
        window = min(self.peer_window, cwnd)
        return max(0, window - self.flight_size)

    def next_segment_payload(self, cwnd: int) -> IoVec | None:
        """The next new payload to send (<= mss), or ``None``."""
        allowed = min(self.usable_window(cwnd), self.unsent, self.mss)
        if allowed <= 0:
            return None
        return self.buffer.slice(self.flight_size, allowed)

    def mark_sent(self, nbytes: int, now: float) -> int:
        """Advance ``snd_nxt`` after transmitting ``nbytes`` new bytes;
        returns the segment's sequence number."""
        seq = self.snd_nxt
        self.snd_nxt = seq_add(self.snd_nxt, nbytes)
        if self.timing_seq is None:
            self.timing_seq = self.snd_nxt
            self.timing_sent_at = now
            self.timing_valid = True
        return seq

    def retransmit_payload(self) -> IoVec | None:
        """The earliest unacknowledged payload (<= mss), for retransmit."""
        available = min(self.flight_size, self.mss, len(self.buffer))
        if available <= 0:
            return None
        # Karn: anything covered by this retransmission must not be timed.
        if self.timing_seq is not None and seq_le(
            self.timing_seq, seq_add(self.snd_una, available)
        ):
            self.timing_valid = False
        self.retransmitted_high = seq_add(self.snd_una, available)
        return self.buffer.slice(0, available)

    # ------------------------------------------------------------------
    # Acknowledgements
    # ------------------------------------------------------------------
    def ack_is_new(self, ack: int) -> bool:
        """Whether ``ack`` advances ``snd_una``."""
        return seq_lt(self.snd_una, ack) and seq_le(ack, self.snd_nxt)

    def mark_acked(self, ack: int, now: float) -> tuple[int, float | None]:
        """Process a new cumulative ACK.

        Returns ``(newly_acked_bytes, rtt_sample_or_None)``.
        """
        acked = seq_sub(ack, self.snd_una)
        self.snd_una = ack
        self.buffer.consume(acked)
        rtt = None
        if (
            self.timing_seq is not None
            and seq_le(self.timing_seq, ack)
        ):
            if self.timing_valid:
                rtt = now - self.timing_sent_at
            self.timing_seq = None
        return acked, rtt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SendWindow una={self.snd_una} nxt={self.snd_nxt} "
            f"buffered={len(self.buffer)} peer_win={self.peer_window}>"
        )


class RecvWindow:
    """Receiver-side state: reassembly and the advertised window."""

    __slots__ = ("rcv_nxt", "capacity", "ready", "out_of_order")

    def __init__(self, irs: int, capacity: int) -> None:
        self.rcv_nxt = irs
        self.capacity = capacity
        #: In-order bytes ready for the application.
        self.ready = IoVec()
        #: seq -> bytes payload, for segments past rcv_nxt.
        self.out_of_order: dict[int, bytes] = {}

    @property
    def advertised(self) -> int:
        """Window to advertise: capacity minus everything buffered."""
        buffered = len(self.ready) + sum(
            len(chunk) for chunk in self.out_of_order.values()
        )
        return max(0, self.capacity - buffered)

    def accept(self, seq: int, payload: bytes) -> bool:
        """Fold one data segment in; returns True if ``rcv_nxt`` advanced
        (i.e. new in-order data became available)."""
        if not payload:
            return False
        end = seq_add(seq, len(payload))
        if seq_le(end, self.rcv_nxt):
            return False  # entirely duplicate
        if seq_lt(seq, self.rcv_nxt):
            # Trim the duplicated head.
            skip = seq_sub(self.rcv_nxt, seq)
            payload = payload[skip:]
            seq = self.rcv_nxt
        if seq != self.rcv_nxt:
            # Out of order: hold it (first copy wins; equal data assumed).
            if seq not in self.out_of_order:
                self.out_of_order[seq] = payload
            return False
        # In order: deliver, then drain any contiguous held segments.
        self.ready.append(payload)
        self.rcv_nxt = seq_add(self.rcv_nxt, len(payload))
        while self.rcv_nxt in self.out_of_order:
            chunk = self.out_of_order.pop(self.rcv_nxt)
            self.ready.append(chunk)
            self.rcv_nxt = seq_add(self.rcv_nxt, len(chunk))
        return True

    def read(self, nbytes: int) -> bytes:
        """Take up to ``nbytes`` of in-order data for the application."""
        take = min(nbytes, len(self.ready))
        if take == 0:
            return b""
        view = self.ready.peek(take)
        data = view.to_bytes()
        self.ready.consume(take)
        return data

    @property
    def available(self) -> int:
        """In-order bytes ready to read."""
        return len(self.ready)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RecvWindow nxt={self.rcv_nxt} ready={len(self.ready)} "
            f"ooo={len(self.out_of_order)}>"
        )
