"""Gateway acceptance tests: routing, coalescing, failover, reuse.

Everything runs inside one live runtime: the upstream servers, the
gateway, and the driving clients are all cooperative monadic threads on
the same scheduler — end-to-end over real sockets, no OS threads.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.app.gateway import ResponseCache, build_gateway
from repro.core.do_notation import do
from repro.core.syscalls import sys_sleep
from repro.core.thread import join_all, spawn
from repro.http.client import HttpClient
from repro.http.message import HttpResponse
from repro.http.server import build_live_server
from repro.runtime.live_runtime import LiveRuntime, make_listener


@pytest.fixture
def rt():
    runtime = LiveRuntime(uncaught="store")
    yield runtime
    runtime.shutdown()


def run(rt, comp, timeout=15.0):
    done = []

    @do
    def driver():
        yield comp
        done.append(True)

    rt.spawn(driver(), name="test-driver")
    rt.run(until=lambda: bool(done), idle_timeout=timeout)
    assert done, "driver did not finish"


class CountingHandler:
    """An upstream application that counts respond() calls and can be
    slow on selected paths."""

    def __init__(self, body: bytes = b"payload", delay: float = 0.0,
                 slow_prefix: str = "/") -> None:
        self.body = body
        self.delay = delay
        self.slow_prefix = slow_prefix
        self.calls = 0

    def respond(self, request):
        return self._respond(request)

    @do
    def _respond(self, request):
        self.calls += 1
        if self.delay and request.path.startswith(self.slow_prefix):
            yield sys_sleep(self.delay)
        return HttpResponse(
            200, body=self.body, headers={"Content-Type": "text/plain"}
        )


def start_upstream(rt, handler=None, site=None, name="upstream"):
    listener = make_listener()
    server = build_live_server(
        rt, listener,
        site=site if site is not None else {"data": b"from-upstream"},
        handler=handler, name=name,
    )
    rt.spawn(server.main(), name=name)
    return listener, server


def start_gateway(rt, routes, name="gateway", **kwargs):
    listener = make_listener()
    kwargs.setdefault("probe_interval", 0.05)
    server = build_gateway(rt, listener, routes, name=name, **kwargs)
    rt.spawn(server.main(), name=name)
    return listener, server


def front_client(rt, listener, **kwargs) -> HttpClient:
    kwargs.setdefault("pool_size", 4)
    return HttpClient(rt.io, rt.timers, listener.getsockname(),
                      name="front", **kwargs)


class TestRouting:
    def test_proxies_a_get_end_to_end(self, rt):
        up_listener, upstream = start_upstream(
            rt, site={"data.txt": b"from-upstream"}
        )
        gw_listener, gateway = start_gateway(
            rt, [{"prefix": "/", "upstreams": [up_listener.getsockname()]}]
        )
        client = front_client(rt, gw_listener)
        results = []

        @do
        def body():
            response = yield client.get("/data.txt")
            results.append(response)
            yield client.close()
            yield gateway.gateway.close()

        run(rt, body())
        upstream.stop()
        gateway.stop()
        up_listener.close()
        gw_listener.close()
        (response,) = results
        assert response.status == 200
        assert response.body == b"from-upstream"
        assert response.header("content-type").startswith("text/plain")
        stats = gateway.extra_stats()
        assert stats["gw_requests"] == 1
        assert stats["gw_upstream_requests"] == 1

    def test_longest_prefix_wins_and_unrouted_is_404(self, rt):
        a_listener, a_server = start_upstream(
            rt, site={"v": b"generic"}, name="up-a"
        )
        b_listener, b_server = start_upstream(
            rt, site={"api/v": b"specific"}, name="up-b"
        )
        gw_listener, gateway = start_gateway(rt, [
            {"prefix": "/api", "upstreams": [b_listener.getsockname()]},
            {"prefix": "/", "upstreams": [a_listener.getsockname()]},
        ])
        client = front_client(rt, gw_listener)
        seen = []

        @do
        def body():
            api = yield client.get("/api/v")
            seen.append(api.body)
            root = yield client.get("/v")
            seen.append(root.body)
            yield client.close()
            yield gateway.gateway.close()

        run(rt, body())
        for server in (a_server, b_server, gateway):
            server.stop()
        for listener in (a_listener, b_listener, gw_listener):
            listener.close()
        assert seen == [b"specific", b"generic"]

    def test_unrouted_path_is_404(self, rt):
        up_listener, upstream = start_upstream(rt)
        gw_listener, gateway = start_gateway(
            rt,
            [{"prefix": "/api", "upstreams": [up_listener.getsockname()]}],
        )
        client = front_client(rt, gw_listener)
        statuses = []

        @do
        def body():
            response = yield client.get("/elsewhere")
            statuses.append(response.status)
            yield client.close()
            yield gateway.gateway.close()

        run(rt, body())
        upstream.stop()
        gateway.stop()
        up_listener.close()
        gw_listener.close()
        assert statuses == [404]
        assert gateway.extra_stats()["gw_not_found"] == 1


class TestPoolExhaustion:
    def test_exhausted_pool_parks_then_times_out_cleanly(self, rt):
        handler = CountingHandler(delay=1.0, slow_prefix="/slow")
        up_listener, upstream = start_upstream(rt, handler=handler)
        gw_listener, gateway = start_gateway(
            rt,
            [{"prefix": "/", "upstreams": [up_listener.getsockname()]}],
            pool_size=1, request_timeout=0.25, cache_ttl=0.0,
        )
        client = front_client(rt, gw_listener, pool_size=3,
                              request_timeout=5.0)
        statuses = []

        @do
        def one(index):
            # Distinct paths so coalescing cannot merge the requests.
            response = yield client.get(f"/slow/{index}")
            statuses.append(response.status)

        @do
        def body():
            handles = []
            for index in range(3):
                handle = yield spawn(one(index), name=f"req-{index}")
                handles.append(handle)
                if index == 0:
                    yield sys_sleep(0.02)  # the first request leases
            yield join_all(handles)
            # The gateway survived the pile-up: a fast path still works.
            ok = yield client.get("/fast")
            statuses.append(ok.status)
            yield client.close()
            yield gateway.gateway.close()

        run(rt, body())
        upstream.stop()
        gateway.stop()
        up_listener.close()
        gw_listener.close()
        assert statuses[:3] == [504, 504, 504]
        assert statuses[3] == 200
        pool = gateway.gateway.routes[0].clients[0].pool
        assert pool.lease_timeouts >= 1  # at least one waiter parked out
        assert pool.waiting == 0  # nothing left stranded


class TestUpstreamHealth:
    def test_down_upstream_is_502_then_readmitted_after_reprobe(self, rt):
        # Reserve a port, then leave it closed: the upstream is "down".
        placeholder = socket.socket()
        placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        placeholder.bind(("127.0.0.1", 0))
        address = placeholder.getsockname()
        placeholder.close()
        gw_listener, gateway = start_gateway(
            rt, [{"prefix": "/", "upstreams": [address]}],
            connect_timeout=0.3, probe_interval=0.05, cache_ttl=0.0,
        )
        client = front_client(rt, gw_listener)
        stages = []
        revived = []

        @do
        def body():
            first = yield client.get("/data")
            stages.append(("dead", first.status))
            assert gateway.extra_stats()["gw_upstreams_down"] == 1
            # Revive the upstream on the same port; the pool's re-probe
            # must readmit it without any gateway restart.
            listener = make_listener(address[0], address[1])
            revived.append(listener)
            server = build_live_server(
                rt, listener, site={"data": b"back"}, name="revived"
            )
            revived.append(server)
            yield spawn(server.main(), name="revived")
            pool = gateway.gateway.routes[0].clients[0].pool
            for _ in range(200):
                if not pool.down:
                    break
                yield sys_sleep(0.02)
            second = yield client.get("/data")
            stages.append(("revived", second.status, second.body))
            yield client.close()
            yield gateway.gateway.close()

        run(rt, body())
        gateway.stop()
        if len(revived) > 1:
            revived[1].stop()
        if revived:
            revived[0].close()
        gw_listener.close()
        assert stages[0] == ("dead", 502)
        assert stages[1] == ("revived", 200, b"back")
        pool = gateway.gateway.routes[0].clients[0].pool
        assert pool.downs == 1
        assert pool.readmissions == 1
        assert gateway.extra_stats()["gw_upstreams_down"] == 0

    def test_failover_masks_one_dead_upstream(self, rt):
        up_listener, upstream = start_upstream(rt)
        dead = socket.socket()
        dead.bind(("127.0.0.1", 0))
        dead_address = dead.getsockname()
        dead.close()
        gw_listener, gateway = start_gateway(
            rt,
            [{"prefix": "/", "upstreams": [
                dead_address, up_listener.getsockname(),
            ]}],
            connect_timeout=0.3, cache_ttl=0.0,
        )
        client = front_client(rt, gw_listener)
        bodies = []

        @do
        def body():
            for _ in range(4):
                response = yield client.get("/data")
                bodies.append((response.status, response.body))
            yield client.close()
            yield gateway.gateway.close()

        run(rt, body())
        upstream.stop()
        gateway.stop()
        up_listener.close()
        gw_listener.close()
        assert bodies == [(200, b"from-upstream")] * 4
        stats = gateway.extra_stats()
        assert stats["gw_failovers"] >= 1
        assert stats["gw_bad_gateway"] == 0


class TestCoalescing:
    def test_fifty_concurrent_gets_cost_one_upstream_request(self, rt):
        handler = CountingHandler(body=b"expensive", delay=0.25)
        up_listener, upstream = start_upstream(rt, handler=handler)
        gw_listener, gateway = start_gateway(
            rt,
            [{"prefix": "/", "upstreams": [up_listener.getsockname()]}],
            cache_ttl=0.0,  # isolate coalescing from the cache
        )
        client = front_client(rt, gw_listener, pool_size=50,
                              request_timeout=10.0)
        bodies = []

        @do
        def one():
            response = yield client.get("/hot")
            bodies.append(response.body)

        @do
        def body():
            handles = []
            for index in range(50):
                handle = yield spawn(one(), name=f"dup-{index}")
                handles.append(handle)
            yield join_all(handles)
            yield client.close()
            yield gateway.gateway.close()

        run(rt, body())
        upstream.stop()
        gateway.stop()
        up_listener.close()
        gw_listener.close()
        assert bodies == [b"expensive"] * 50
        assert handler.calls == 1  # one upstream fetch for all fifty
        stats = gateway.extra_stats()
        assert stats["gw_requests"] == 50
        assert stats["gw_upstream_requests"] == 1
        assert stats["gw_coalesced"] == 49
        assert stats["gw_inflight"] == 0  # the flight table drained

    def test_cache_serves_repeat_gets_within_ttl(self, rt):
        handler = CountingHandler(body=b"cacheable")
        up_listener, upstream = start_upstream(rt, handler=handler)
        gw_listener, gateway = start_gateway(
            rt,
            [{"prefix": "/", "upstreams": [up_listener.getsockname()]}],
            cache_ttl=10.0,
        )
        client = front_client(rt, gw_listener)
        bodies = []

        @do
        def body():
            for _ in range(3):
                response = yield client.get("/page")
                bodies.append(response.body)
            yield client.close()
            yield gateway.gateway.close()

        run(rt, body())
        upstream.stop()
        gateway.stop()
        up_listener.close()
        gw_listener.close()
        assert bodies == [b"cacheable"] * 3
        assert handler.calls == 1
        stats = gateway.extra_stats()
        assert stats["gw_cache_hits"] == 2
        assert stats["gw_upstream_requests"] == 1


class TestKeepAliveReuse:
    def test_upstream_connections_are_reused_across_requests(self, rt):
        up_listener, upstream = start_upstream(rt)
        gw_listener, gateway = start_gateway(
            rt,
            [{"prefix": "/", "upstreams": [up_listener.getsockname()]}],
            pool_size=2, cache_ttl=0.0,
        )
        client = front_client(rt, gw_listener)
        count = 20
        statuses = []

        @do
        def body():
            for _ in range(count):
                response = yield client.get("/data")
                statuses.append(response.status)
            yield client.close()
            yield gateway.gateway.close()

        run(rt, body())
        upstream.stop()
        gateway.stop()
        up_listener.close()
        gw_listener.close()
        assert statuses == [200] * count
        # The upstream's own accept counter is the ground truth: the
        # gateway ran twenty requests over at most two sockets.
        assert upstream.stats.connections <= 2
        stats = gateway.extra_stats()
        assert stats["gw_pool_dials"] <= 2
        assert stats["gw_reuse_ratio"] >= 0.9


class TestFanout:
    def test_fanout_merges_and_tolerates_partial_failure(self, rt):
        a_listener, a_server = start_upstream(
            rt, site={"all": b"alpha"}, name="up-a"
        )
        dead = socket.socket()
        dead.bind(("127.0.0.1", 0))
        dead_address = dead.getsockname()
        dead.close()
        gw_listener, gateway = start_gateway(
            rt,
            [{"prefix": "/", "policy": "fanout", "upstreams": [
                a_listener.getsockname(), dead_address,
            ]}],
            connect_timeout=0.3, cache_ttl=0.0,
        )
        client = front_client(rt, gw_listener)
        results = []

        @do
        def body():
            response = yield client.get("/all")
            results.append(response)
            yield client.close()
            yield gateway.gateway.close()

        run(rt, body())
        a_server.stop()
        gateway.stop()
        a_listener.close()
        gw_listener.close()
        (response,) = results
        assert response.status == 200
        merged = json.loads(response.body)
        assert merged["ok"] == 1
        assert merged["failed"] == 1
        entries = {entry["upstream"]: entry for entry in merged["results"]}
        assert entries[0]["body"] == "alpha"
        assert "error" in entries[1]
        assert gateway.extra_stats()["gw_fanouts"] == 1


class TestResponseCacheUnit:
    def test_ttl_expiry_and_byte_cap(self):
        cache = ResponseCache(capacity_bytes=10, ttl=1.0)
        big = HttpResponse(200, body=b"x" * 11)
        assert not cache.put("/big", big, now=0.0)
        assert cache.put("/a", HttpResponse(200, body=b"aaaa"), now=0.0)
        assert cache.put("/b", HttpResponse(200, body=b"bbbb"), now=0.0)
        assert cache.get("/a", now=0.5).body == b"aaaa"
        # /c (4 bytes) forces an eviction of the LRU entry (/b).
        assert cache.put("/c", HttpResponse(200, body=b"cccc"), now=0.5)
        assert cache.get("/b", now=0.5) is None
        assert cache.evictions == 1
        # Everything expires past the TTL.
        assert cache.get("/a", now=2.0) is None
        assert cache.expirations == 1
