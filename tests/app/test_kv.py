"""The sharded KV service: ring placement, mesh proxying, fan-out merges,
and the full 4-shard cluster serving KV traffic where every shard answers
any key."""

from __future__ import annotations

import base64
import collections
import json

import pytest

from repro.app.kv import HashRing, KvNode, build_kv_app, kv_app_factory
from repro.core.do_notation import do
from repro.http.blocking_client import BlockingHttpClient
from repro.runtime.cluster import ClusterServer
from repro.runtime.live_runtime import LiveRuntime
from repro.runtime.mesh import MeshNode


# ----------------------------------------------------------------------
# The ring.
# ----------------------------------------------------------------------
class TestHashRing:
    def test_deterministic_across_instances(self):
        first = HashRing(4)
        second = HashRing(4)
        keys = [f"key-{i}" for i in range(200)]
        assert [first.owner(k) for k in keys] == [
            second.owner(k) for k in keys
        ]

    def test_every_shard_owns_some_keys(self):
        ring = HashRing(4)
        owners = collections.Counter(
            ring.owner(f"key-{i}") for i in range(1000)
        )
        assert sorted(owners) == [0, 1, 2, 3]
        # Consistent hashing with 64 vnodes: no shard is starved.
        assert min(owners.values()) > 50

    def test_growing_the_ring_moves_few_keys(self):
        # The consistent-hashing property: adding a shard remaps roughly
        # 1/n of the keys, not all of them.
        small = HashRing(4)
        large = HashRing(5)
        keys = [f"key-{i}" for i in range(1000)]
        moved = sum(
            1 for k in keys if small.owner(k) != large.owner(k)
        )
        assert 0 < moved < 500

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, vnodes=0)


# ----------------------------------------------------------------------
# A single node without a mesh: every key local.
# ----------------------------------------------------------------------
class TestSoloNode:
    def run_op(self, comp):
        rt = LiveRuntime(uncaught="store")
        try:
            results = []

            @do
            def main():
                value = yield comp
                results.append(value)

            rt.spawn(main())
            rt.run(until=lambda: bool(results), idle_timeout=5.0)
            return results[0]
        finally:
            rt.shutdown()

    def test_put_get_delete_roundtrip(self):
        node = KvNode(0, 1)
        created, _, proxied = self.run_op(node.put("a", b"1"))
        assert created and not proxied
        found, value, proxied = self.run_op(node.get("a"))
        assert (found, value, proxied) == (True, b"1", False)
        deleted, _, _ = self.run_op(node.delete("a"))
        assert deleted
        found, value, _ = self.run_op(node.get("a"))
        assert (found, value) == (False, None)
        assert node.proxied_ops == 0
        assert node.owned_ops == 4

    def test_mget_all_local(self):
        node = KvNode(0, 1)
        self.run_op(node.put("a", b"1"))
        self.run_op(node.put("b", b"2"))
        merged = self.run_op(node.mget(["a", "b", "ghost"]))
        assert merged == {"a": b"1", "b": b"2", "ghost": None}


# ----------------------------------------------------------------------
# Two nodes over a real mesh in one runtime: proxying and fan-out.
# ----------------------------------------------------------------------
class TestMeshedNodes:
    @pytest.fixture
    def world(self):
        rt = LiveRuntime(uncaught="store")
        listeners = [rt.make_listener(), rt.make_listener()]
        peers = {
            i: ("127.0.0.1", listener.getsockname()[1])
            for i, listener in enumerate(listeners)
        }
        meshes = [
            MeshNode(i, rt.io, listeners[i], peers) for i in range(2)
        ]
        nodes = [KvNode(i, 2, mesh=meshes[i]) for i in range(2)]
        for mesh in meshes:
            rt.spawn(mesh.serve())
        yield rt, nodes
        rt.shutdown()

    def drive(self, rt, comp):
        results = []

        @do
        def main():
            value = yield comp
            results.append(value)

        rt.spawn(main())
        rt.run(until=lambda: bool(results), idle_timeout=5.0)
        assert results, "operation never completed"
        return results[0]

    def _key_owned_by(self, nodes, owner, start=0):
        index = start
        while True:
            key = f"key-{index}"
            if nodes[0].ring.owner(key) == owner:
                return key
            index += 1

    def test_non_owner_proxies_to_owner(self, world):
        rt, nodes = world
        key = self._key_owned_by(nodes, owner=1)
        # Write through the NON-owner: must land in the owner's store.
        created, _, proxied = self.drive(rt, nodes[0].put(key, b"remote"))
        assert created and proxied
        assert key in nodes[1].store
        assert key not in nodes[0].store
        found, value, proxied = self.drive(rt, nodes[0].get(key))
        assert (found, value, proxied) == (True, b"remote", True)
        # Reading through the owner is local.
        found, value, proxied = self.drive(rt, nodes[1].get(key))
        assert (found, value, proxied) == (True, b"remote", False)
        assert nodes[0].proxied_ops == 2
        assert nodes[1].mesh_served_ops == 2

    def test_mget_spans_both_shards(self, world):
        rt, nodes = world
        key_a = self._key_owned_by(nodes, owner=0)
        key_b = self._key_owned_by(nodes, owner=1)
        self.drive(rt, nodes[0].put(key_a, b"va"))
        self.drive(rt, nodes[0].put(key_b, b"vb"))
        merged = self.drive(rt, nodes[1].mget([key_a, key_b, "ghost-x"]))
        assert merged[key_a] == b"va"
        assert merged[key_b] == b"vb"
        assert merged["ghost-x"] is None

    def test_stats_all_reports_both_shards(self, world):
        rt, nodes = world
        key_b = self._key_owned_by(nodes, owner=1)
        self.drive(rt, nodes[0].put(key_b, b"x"))
        stats = self.drive(rt, nodes[0].stats_all())
        assert [entry["index"] for entry in stats] == [0, 1]
        assert stats[1]["keys"] == 1
        assert stats[1]["mesh_served_ops"] == 1


# ----------------------------------------------------------------------
# The acceptance scenario: a 4-shard cluster, every shard answers any key.
# ----------------------------------------------------------------------
def solo_factory(rt, listener):
    return build_kv_app(rt, listener)


class TestKvCluster:
    @pytest.fixture(scope="class")
    def cluster(self):
        server = ClusterServer(
            kv_app_factory, shards=4, mesh=True, grace=0.1
        )
        server.start()
        yield server
        server.stop()

    def test_every_shard_answers_any_key(self, cluster):
        keys = {f"user:{i}": f"value-{i}".encode() for i in range(32)}
        # Populate over several connections (the kernel spreads them over
        # shards; proxying routes each key to its owner).
        writer = BlockingHttpClient(cluster.port)
        put_proxied = 0
        for key, value in keys.items():
            status, headers, _ = writer.request("PUT", f"/kv/{key}", value)
            assert status.split()[1] in ("201", "204"), status
            assert headers["x-kv-source"] in ("local", "proxied")
            put_proxied += headers["x-kv-source"] == "proxied"
        writer.close()

        sources = collections.Counter()
        reads = 0
        # Many fresh connections: land on multiple shards, read all keys.
        for _round in range(4):
            client = BlockingHttpClient(cluster.port)
            for key, value in keys.items():
                status, headers, body = client.request("GET", f"/kv/{key}")
                assert status.endswith("200 OK"), (key, status)
                assert body == value
                sources[headers["x-kv-source"]] += 1
                reads += 1
            client.close()
        # 4 shards, 4 connections, 32 keys: both paths must be exercised.
        assert sources["local"] > 0
        assert sources["proxied"] > 0
        assert sources["local"] + sources["proxied"] == reads

        # Server-side accounting agrees: the owned/proxied split is
        # visible per shard through the control-plane stats.
        stats = cluster.stats()
        assert stats["aggregate"]["workers_reporting"] == 4
        per_shard = [w["app"] for w in stats["workers"] if w]
        assert len(per_shard) == 4
        assert all("kv_owned_ops" in entry for entry in per_shard)
        aggregate = stats["aggregate"]["app"]
        assert aggregate["kv_proxied_ops"] == sources["proxied"] + put_proxied
        assert aggregate["kv_keys"] == len(keys)
        mesh_aggregate = stats["aggregate"]["mesh"]
        assert mesh_aggregate["calls"] > 0
        assert mesh_aggregate["served"] > 0

    def test_mget_merges_across_all_shards(self, cluster):
        keys = {f"mget:{i}": f"m-{i}".encode() for i in range(16)}
        client = BlockingHttpClient(cluster.port)
        for key, value in keys.items():
            client.request("PUT", f"/kv/{key}", value)
        spec = ",".join(list(keys) + ["mget:ghost"])
        status, _headers, body = client.request("GET", f"/mget?keys={spec}")
        assert status.endswith("200 OK")
        values = json.loads(body)["values"]
        for key, value in keys.items():
            assert base64.b64decode(values[key]) == value
        assert values["mget:ghost"] is None
        # The coordinating shard cannot own all 16 keys: the merge spans
        # shards (all four owners appear with 64 vnodes and 16 keys).
        owners = {HashRing(4).owner(key) for key in keys}
        assert len(owners) > 1
        client.close()

    def test_kv_stats_streams_chunked_per_shard(self, cluster):
        client = BlockingHttpClient(cluster.port)
        status, headers, body = client.request("GET", "/kv-stats")
        assert status.endswith("200 OK")
        assert headers.get("transfer-encoding") == "chunked"
        lines = [json.loads(line) for line in body.splitlines()]
        assert [entry.get("index") for entry in lines] == [0, 1, 2, 3]
        assert all("keys" in entry for entry in lines)
        client.close()

    def test_delete_and_missing_key_semantics(self, cluster):
        client = BlockingHttpClient(cluster.port)
        client.request("PUT", "/kv/doomed", b"bye")
        status, headers, _ = client.request("DELETE", "/kv/doomed")
        assert status.split()[1] == "204"
        status, _, _ = client.request("GET", "/kv/doomed")
        assert status.split()[1] == "404"
        status, _, _ = client.request("DELETE", "/kv/doomed")
        assert status.split()[1] == "404"
        status, _, _ = client.request("GET", "/unknown-route")
        assert status.split()[1] == "404"
        client.close()

    def test_put_then_overwrite_statuses(self, cluster):
        client = BlockingHttpClient(cluster.port)
        status, _, _ = client.request("PUT", "/kv/fresh-key", b"v1")
        assert status.split()[1] == "201"
        status, _, _ = client.request("PUT", "/kv/fresh-key", b"v2")
        assert status.split()[1] == "204"
        status, _, body = client.request("GET", "/kv/fresh-key")
        assert body == b"v2"
        client.close()


class TestFactorySignatures:
    def test_build_kv_app_direct_as_factory_gets_mesh_by_keyword(self):
        # ``build_kv_app``'s mesh parameter is defaulted (mesh=None); the
        # cluster must still pass the MeshNode (matched by name), or a
        # mesh=True cluster would silently serve inconsistent data.
        cluster = ClusterServer(build_kv_app, shards=2, mesh=True,
                                grace=0.1)
        cluster.start()
        try:
            client = BlockingHttpClient(cluster.port)
            sources = set()
            for index in range(12):
                status, headers, _ = client.request(
                    "PUT", f"/kv/sig:{index}", b"v"
                )
                assert status.split()[1] in ("201", "204"), status
                sources.add(headers["x-kv-source"])
            # One connection is pinned to one shard: with 2 shards and
            # 12 keys, some ops must have crossed the mesh.
            assert "proxied" in sources
            client.close()
        finally:
            cluster.stop()


class TestKvSoloCluster:
    def test_single_shard_without_mesh_serves_kv(self):
        cluster = ClusterServer(solo_factory, shards=1, grace=0.1)
        cluster.start()
        try:
            client = BlockingHttpClient(cluster.port)
            status, headers, _ = client.request("PUT", "/kv/solo", b"one")
            assert status.split()[1] == "201"
            assert headers["x-kv-source"] == "local"
            status, _, body = client.request("GET", "/kv/solo")
            assert body == b"one"
            # HEAD advertises the length but carries no body — and must
            # not desync the keep-alive connection for the next request.
            status, headers, body = client.request("HEAD", "/kv/solo")
            assert status.endswith("200 OK")
            assert headers["content-length"] == "3"
            assert body == b""
            status, _, body = client.request("GET", "/kv/solo")
            assert body == b"one"
            stats = cluster.stats()
            assert stats["aggregate"]["app"]["kv_keys"] == 1
            assert "mesh" not in stats["workers"][0]
            client.close()
        finally:
            cluster.stop()
