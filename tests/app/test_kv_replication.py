"""Replicated KV: N-successor placement, quorum writes, read-repair,
hinted handoff, and the replicated cluster surviving a killed shard and a
rolling reload."""

from __future__ import annotations

import collections
import os
import signal
import time

import pytest

from repro.app.kv import HashRing, KvNode, KvQuorumError, kv_app_factory
from repro.core.do_notation import do
from repro.http.blocking_client import BlockingHttpClient
from repro.runtime.cluster import ClusterServer
from repro.runtime.live_runtime import LiveRuntime
from repro.runtime.mesh import MeshNode


# ----------------------------------------------------------------------
# Preference lists on the ring.
# ----------------------------------------------------------------------
class TestSuccessors:
    def test_primary_first_and_distinct(self):
        ring = HashRing(4, replication=3)
        for i in range(200):
            key = f"key-{i}"
            replicas = ring.successors(key, 3)
            assert replicas[0] == ring.owner(key)
            assert len(replicas) == len(set(replicas)) == 3

    def test_deterministic_across_instances(self):
        first = HashRing(5, replication=2)
        second = HashRing(5, replication=2)
        keys = [f"key-{i}" for i in range(200)]
        assert [first.replicas(k) for k in keys] == [
            second.replicas(k) for k in keys
        ]

    def test_replication_clamped_to_shard_count(self):
        ring = HashRing(2, replication=5)
        assert ring.replication == 2
        assert len(ring.successors("x", 5)) == 2

    def test_replica_load_is_spread(self):
        ring = HashRing(4, replication=2)
        holders = collections.Counter()
        for i in range(1000):
            for shard in ring.replicas(f"key-{i}"):
                holders[shard] += 1
        assert sorted(holders) == [0, 1, 2, 3]
        assert min(holders.values()) > 100

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(2, replication=0)


# ----------------------------------------------------------------------
# Replicated nodes over a real mesh in one runtime.
# ----------------------------------------------------------------------
def _drive(rt, comp, idle=5.0):
    results = []

    @do
    def main():
        value = yield comp
        results.append(value)

    rt.spawn(main())
    rt.run(until=lambda: bool(results), idle_timeout=idle)
    assert results, "operation never completed"
    return results[0]


def _drive_error(rt, comp, exc_type, idle=5.0):
    outcome = []

    @do
    def main():
        try:
            value = yield comp
            outcome.append(("value", value))
        except exc_type as exc:
            outcome.append(("error", exc))

    rt.spawn(main())
    rt.run(until=lambda: bool(outcome), idle_timeout=idle)
    assert outcome, "operation never completed"
    return outcome[0]


def _key_with_replicas(ring, wanted, start=0):
    """A key whose preference list is exactly ``wanted`` (ordered)."""
    index = start
    while True:
        key = f"rkey-{index}"
        if ring.replicas(key) == list(wanted):
            return key
        index += 1


@pytest.fixture
def rt():
    runtime = LiveRuntime(uncaught="store")
    yield runtime
    runtime.shutdown()


def make_world(rt, count, live=None, replication=2, write_quorum=1):
    """``count`` mesh peers, of which only ``live`` actually serve.

    A non-live peer's address is a closed port: dials fail fast, which
    models a crashed shard.  Returns the KvNode list (None for dead
    slots).
    """
    live = set(range(count)) if live is None else set(live)
    listeners = {}
    peers = {}
    for i in range(count):
        listener = rt.make_listener()
        address = ("127.0.0.1", listener.getsockname()[1])
        peers[i] = address
        if i in live:
            listeners[i] = listener
        else:
            listener.close()  # dead shard: connection refused
    nodes: list[KvNode | None] = []
    for i in range(count):
        if i not in live:
            nodes.append(None)
            continue
        mesh = MeshNode(i, rt.io, listeners[i], peers, call_timeout=2.0)
        node = KvNode(i, count, mesh=mesh, replication=replication,
                      write_quorum=write_quorum)
        rt.spawn(mesh.serve(), name=f"mesh-{i}")
        nodes.append(node)
    return nodes


class TestReplicatedWrites:
    def test_write_lands_on_every_replica(self, rt):
        nodes = make_world(rt, 3, replication=2)
        key = _key_with_replicas(nodes[0].ring, (1, 2))
        info = {}
        created, _, proxied = _drive(rt, nodes[0].put(key, b"v1", info))
        assert created and proxied  # node 0 holds no replica of this key
        assert info["acked"] == 2 and info["replicas"] == 2
        assert nodes[1].store[key] == b"v1"
        assert nodes[2].store[key] == b"v1"
        assert key not in nodes[0].store
        # Overwrite through a replica: version advances, not created.
        created, _, proxied = _drive(rt, nodes[1].put(key, b"v2"))
        assert not created and not proxied
        assert nodes[2].store[key] == b"v2"
        assert nodes[1].versions[key] > (0, 0)

    def test_quorum_met_with_one_dead_replica(self, rt):
        # W=1 (the default): a write with one dead replica succeeds and
        # parks a hint for the dead peer.
        nodes = make_world(rt, 3, live={0, 1}, replication=2)
        ring = nodes[0].ring
        key = _key_with_replicas(ring, (1, 2))  # replica 2 is dead
        info = {}
        created, _, _ = _drive(rt, nodes[0].put(key, b"v", info))
        assert created
        assert info["acked"] == 1 and info["replicas"] == 2
        assert nodes[1].store[key] == b"v"
        # The hint parked on the live successor (node 1 acked the write
        # and the coordinator holds no replica).
        deadline = time.monotonic() + 2.0
        while (nodes[1].hints_pending == 0
               and time.monotonic() < deadline):
            rt.run(until=lambda: False, idle_timeout=0.05)
        assert nodes[1].hints_pending == 1
        assert key in nodes[1].hints[2]

    def test_quorum_failure_is_monadic_exception(self, rt):
        # W=2 with one dead replica: the write must fail loudly.
        nodes = make_world(rt, 3, live={0, 1}, replication=2,
                           write_quorum=2)
        key = _key_with_replicas(nodes[0].ring, (1, 2))
        kind, exc = _drive_error(rt, nodes[0].put(key, b"v"),
                                 KvQuorumError)
        assert kind == "error"
        assert "1/2" in str(exc)
        assert nodes[0].quorum_failures == 1
        # The acked replica keeps the write (sloppy, documented).
        assert nodes[1].store[key] == b"v"

    def test_lagging_coordinator_clock_cannot_lose_a_write(self, rt):
        # A coordinator that holds no replica never applies writes, so
        # its lamport clock can lag far behind a key's counter.  Its
        # stamp would be rejected as stale by every replica — the write
        # must be re-stamped and land, not be reported as acked while
        # the old value survives.
        nodes = make_world(rt, 3, replication=2)
        key = _key_with_replicas(nodes[0].ring, (1, 2))
        # Drive the key's version counter well past node 0's clock.
        for round_no in range(5):
            _drive(rt, nodes[1].put(key, f"v{round_no}".encode()))
        assert nodes[1].versions[key][0] > nodes[0].clock
        info = {}
        created, _, _ = _drive(rt, nodes[0].put(key, b"winner", info))
        assert not created
        assert info["acked"] == 2
        assert nodes[1].store[key] == b"winner"
        assert nodes[2].store[key] == b"winner"
        found, value, _ = _drive(rt, nodes[0].get(key))
        assert (found, value) == (True, b"winner")
        # The coordinator's clock caught up past the merged counter.
        assert nodes[0].clock >= nodes[1].versions[key][0]

    def test_delete_replicates_a_tombstone(self, rt):
        nodes = make_world(rt, 2, replication=2)
        key = "tomb-key"
        _drive(rt, nodes[0].put(key, b"v"))
        deleted, _, _ = _drive(rt, nodes[1].delete(key))
        assert deleted
        assert key not in nodes[0].store and key not in nodes[1].store
        # The tombstone version survives: a stale live copy cannot win.
        assert key in nodes[0].versions and key in nodes[1].versions
        found, value, _ = _drive(rt, nodes[0].get(key))
        assert (found, value) == (False, None)


class TestReadFallbackAndRepair:
    def test_read_falls_back_past_a_dead_primary(self, rt):
        nodes = make_world(rt, 3, live={0, 1}, replication=2)
        # Primary (node 2) is dead; the successor (node 1) acked.
        key = _key_with_replicas(nodes[0].ring, (2, 1))
        _drive(rt, nodes[0].put(key, b"survives"))
        info = {}
        found, value, _ = _drive(rt, nodes[0].get(key, info))
        assert (found, value) == (True, b"survives")
        assert info["consulted"] == 1 and info["replicas"] == 2
        assert info["served_by"] == 1

    def test_read_repair_patches_stale_replica(self, rt):
        nodes = make_world(rt, 2, replication=2)
        key = "repair-key"
        _drive(rt, nodes[0].put(key, b"old"))
        # Simulate node 1 missing an overwrite (it was down for it):
        # node 0 holds a newer version locally.
        version = (nodes[0].clock + 1, 0)
        nodes[0].clock += 1
        nodes[0]._apply_versioned(key, version, b"new")
        assert nodes[1].store[key] == b"old"
        # A read through the *stale* node returns the newest version and
        # repairs the stale copy (itself, in this case) synchronously.
        found, value, _ = _drive(rt, nodes[1].get(key))
        assert (found, value) == (True, b"new")
        assert nodes[1].store[key] == b"new"
        assert nodes[1].read_repairs == 1

    def test_read_repair_patches_remote_missing_replica(self, rt):
        nodes = make_world(rt, 2, replication=2)
        key = "missing-key"
        # Write applied only on node 0 (simulating node 1 down for it).
        version = (1, 0)
        nodes[0].clock = 1
        nodes[0]._apply_versioned(key, version, b"val")
        found, value, _ = _drive(rt, nodes[0].get(key))
        assert (found, value) == (True, b"val")
        # The repair is an async one-way cast: run until it lands.
        rt.run(until=lambda: key in nodes[1].store, idle_timeout=2.0)
        assert nodes[1].store[key] == b"val"
        assert nodes[1].versions[key] == version

    def test_tombstone_wins_read_repair(self, rt):
        nodes = make_world(rt, 2, replication=2)
        key = "zombie-key"
        _drive(rt, nodes[0].put(key, b"v"))
        # Node 0 saw the delete, node 1 missed it.
        version = (nodes[0].clock + 1, 0)
        nodes[0].clock += 1
        nodes[0]._apply_versioned(key, version, None)
        assert nodes[1].store[key] == b"v"
        found, _value, _ = _drive(rt, nodes[1].get(key))
        assert not found  # the newer tombstone wins over the live copy
        assert key not in nodes[1].store


class TestHintedHandoff:
    def test_hints_replay_when_the_peer_comes_back(self, rt):
        # Peer 1 starts dead; writes park hints; then a real node binds
        # the same address and replay drains the hints into it.
        nodes = make_world(rt, 2, live={0}, replication=2)
        node0 = nodes[0]
        keys = {}
        for i in range(64):
            key = f"handoff-{i}"
            if node0.ring.replicas(key) != [0, 1]:
                continue
            keys[key] = f"v-{i}".encode()
            if len(keys) == 4:
                break
        for key, value in keys.items():
            _drive(rt, node0.put(key, value))
        assert node0.hints_pending == len(keys)
        assert node0.hints_queued == len(keys)
        # Resurrect peer 1 on its advertised address.
        host, port = node0.mesh.peers[1]
        listener = rt.make_listener(host, port)
        mesh1 = MeshNode(1, rt.io, listener, dict(node0.mesh.peers),
                         call_timeout=2.0)
        node1 = KvNode(1, 2, mesh=mesh1, replication=2)
        rt.spawn(mesh1.serve(), name="mesh-1-revived")
        replayed = _drive(rt, node0.replay_hints(1))
        assert replayed == len(keys)
        assert node0.hints_pending == 0
        assert node0.hints_replayed == len(keys)
        for key, value in keys.items():
            assert node1.store[key] == value

    def test_replay_keeps_hints_for_a_still_dead_peer(self, rt):
        nodes = make_world(rt, 2, live={0}, replication=2)
        node0 = nodes[0]
        key = _key_with_replicas(node0.ring, (0, 1))
        _drive(rt, node0.put(key, b"v"))
        assert node0.hints_pending == 1
        replayed = _drive(rt, node0.replay_hints(1))
        assert replayed == 0
        assert node0.hints_pending == 1  # kept for the next attempt


# ----------------------------------------------------------------------
# The acceptance scenario: a replicated cluster under faults.
# ----------------------------------------------------------------------
class TestReplicatedCluster:
    def _put(self, client, key, value):
        status, headers, _ = client.request("PUT", f"/kv/{key}", value)
        assert status.split()[1] in ("201", "204"), status
        return headers

    def _aggregate_app(self, cluster):
        return cluster.stats()["aggregate"].get("app", {})

    def test_kill_one_shard_every_key_readable_then_handoff_drains(self):
        cluster = ClusterServer(
            kv_app_factory, shards=4, mesh=True, replication=2,
            respawn=False, grace=0.5,
        )
        cluster.start()
        try:
            keys = {f"acc:{i}": f"value-{i}".encode() for i in range(24)}
            client = BlockingHttpClient(cluster.port)
            for key, value in keys.items():
                headers = self._put(client, key, value)
                assert headers["x-kv-replicas"] == "2/2"
            client.close()

            victim = 1
            cluster.crash_worker(victim)
            deadline = time.monotonic() + 5.0
            while (cluster.worker_pids()[victim] is not None
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            assert cluster.worker_pids()[victim] is None

            # Every key still readable with a shard down (reads fall
            # back to the surviving replica).
            reader = BlockingHttpClient(cluster.port)
            for key, value in keys.items():
                status, _headers, body = reader.request("GET", f"/kv/{key}")
                assert status.endswith("200 OK"), (key, status)
                assert body == value
            # Writes during the outage succeed on the surviving replica
            # and park hints for the dead one.
            updated = {key: value + b"+2" for key, value in keys.items()}
            for key, value in updated.items():
                headers = self._put(reader, key, value)
                assert headers["x-kv-replicas"] in ("1/2", "2/2")
            reader.close()
            app = self._aggregate_app(cluster)
            assert app.get("kv_hints_queued", 0) > 0
            assert app.get("kv_hints_pending", 0) > 0

            # Respawn the dead shard (the monitor path, driven manually
            # because respawn=False keeps the outage deterministic); the
            # master broadcasts peer_up and handoff drains.
            cluster.poll()
            assert cluster.worker_pids()[victim] is not None
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                app = self._aggregate_app(cluster)
                if (app.get("kv_hints_pending", 1) == 0
                        and app.get("kv_hints_replayed", 0) > 0):
                    break
                time.sleep(0.1)
            assert app.get("kv_hints_pending", 1) == 0, app
            assert app.get("kv_hints_replayed", 0) > 0
            assert app.get("kv_replica_writes", 0) > 0

            # And the cluster serves every updated value.
            check = BlockingHttpClient(cluster.port)
            for key, value in updated.items():
                status, _headers, body = check.request("GET", f"/kv/{key}")
                assert status.endswith("200 OK"), (key, status)
                assert body == value
            check.close()
        finally:
            cluster.stop()

    def test_sigkill_one_shard_mid_burst_recovers_acked_writes(
        self, tmp_path
    ):
        # The durability drill: a real SIGKILL (not the cooperative
        # crash command — no drain, no graceful anything) lands in the
        # middle of a write burst.  After respawn, every write that was
        # *acked* must be readable: the dead shard replays its
        # write-ahead log (store + parked hints), and the survivors'
        # hinted handoff drains to zero.
        cluster = ClusterServer(
            kv_app_factory, shards=4, mesh=True, replication=2,
            respawn=False, grace=0.5, wal_dir=str(tmp_path / "wal"),
        )
        cluster.start()
        try:
            acked: dict[str, bytes] = {}
            client = BlockingHttpClient(cluster.port)
            for i in range(30):
                key, value = f"burst:{i}", f"pre-{i}".encode()
                self._put(client, key, value)
                acked[key] = value
            client.close()

            victim = 2
            pid = cluster.worker_pids()[victim]
            assert pid is not None
            os.kill(pid, signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while (cluster.worker_pids()[victim] is not None
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            assert cluster.worker_pids()[victim] is None

            # The burst continues through the outage: acks come from
            # the surviving replicas, hints park for the dead shard.
            survivor = BlockingHttpClient(cluster.port)
            for i in range(30, 60):
                key, value = f"burst:{i}", f"mid-{i}".encode()
                status, headers, _ = survivor.request(
                    "PUT", f"/kv/{key}", value
                )
                if status.split()[1] in ("201", "204"):
                    acked[key] = value
                    assert headers["x-kv-replicas"] in ("1/2", "2/2")
            survivor.close()
            assert len(acked) > 30  # the outage did not stop the burst

            cluster.poll()  # manual respawn (respawn=False above)
            assert cluster.worker_pids()[victim] is not None
            deadline = time.monotonic() + 15.0
            app: dict = {}
            while time.monotonic() < deadline:
                app = self._aggregate_app(cluster)
                if (app.get("kv_hints_pending", 1) == 0
                        and app.get("wal_replayed_records", 0) > 0):
                    break
                time.sleep(0.1)
            # The respawned shard came back from its log, not empty.
            assert app.get("wal_replayed_records", 0) > 0, app
            assert app.get("kv_hints_pending", 1) == 0, app
            assert app.get("wal_fsyncs", 0) > 0
            # Group commit engaged: strictly fewer fsyncs than appends.
            assert app.get("wal_fsyncs") < app.get("wal_appends", 0)

            check = BlockingHttpClient(cluster.port)
            for key, value in acked.items():
                status, _headers, body = check.request("GET", f"/kv/{key}")
                assert status.endswith("200 OK"), (key, status)
                assert body == value
            check.close()
        finally:
            cluster.stop()

    def test_sigkill_unreplicated_shard_recovers_from_log_alone(
        self, tmp_path
    ):
        # replication=1: the killed shard held the *only* copy of its
        # keys, so every recovered read below is proof the WAL replay
        # works — there is no replica to lean on.
        cluster = ClusterServer(
            kv_app_factory, shards=2, mesh=True, replication=1,
            respawn=False, grace=0.5, wal_dir=str(tmp_path / "wal"),
        )
        cluster.start()
        try:
            keys = {f"solo:{i}": f"only-{i}".encode() for i in range(20)}
            client = BlockingHttpClient(cluster.port)
            for key, value in keys.items():
                self._put(client, key, value)
            client.close()

            victim = 1
            pid = cluster.worker_pids()[victim]
            os.kill(pid, signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while (cluster.worker_pids()[victim] is not None
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            cluster.poll()
            assert cluster.worker_pids()[victim] is not None

            check = BlockingHttpClient(cluster.port)
            for key, value in keys.items():
                status, _headers, body = check.request("GET", f"/kv/{key}")
                assert status.endswith("200 OK"), (key, status)
                assert body == value
            check.close()
            app = self._aggregate_app(cluster)
            assert app.get("wal_replayed_records", 0) > 0
        finally:
            cluster.stop()

    def test_rolling_reload_loses_no_keys(self):
        # Every shard drains its store to the key's other replicas on
        # graceful stop, so a full rolling reload — every shard restarts
        # empty, one at a time — never drops the last live copy.
        cluster = ClusterServer(
            kv_app_factory, shards=2, mesh=True, replication=2,
            respawn=False, grace=0.5,
        )
        cluster.start()
        try:
            keys = {f"roll:{i}": f"r-{i}".encode() for i in range(12)}
            client = BlockingHttpClient(cluster.port)
            for key, value in keys.items():
                self._put(client, key, value)
            client.close()

            old_pids = cluster.worker_pids()
            new_pids = cluster.reload(timeout=10.0)
            assert set(new_pids).isdisjoint(set(old_pids))

            check = BlockingHttpClient(cluster.port)
            for key, value in keys.items():
                status, _headers, body = check.request("GET", f"/kv/{key}")
                assert status.endswith("200 OK"), (key, status)
                assert body == value
            check.close()
        finally:
            cluster.stop()

    def test_kv_stats_reports_replication_fields(self):
        cluster = ClusterServer(
            kv_app_factory, shards=2, mesh=True, replication=2, grace=0.2,
        )
        cluster.start()
        try:
            import json as json_mod
            client = BlockingHttpClient(cluster.port)
            self._put(client, "stats-key", b"x")
            status, headers, body = client.request("GET", "/kv-stats")
            assert status.endswith("200 OK")
            assert headers.get("transfer-encoding") == "chunked"
            lines = [json_mod.loads(line) for line in body.splitlines()]
            assert [entry["index"] for entry in lines] == [0, 1]
            for entry in lines:
                assert entry["replication"] == 2
                assert entry["write_quorum"] == 1
                for field in ("read_repairs", "hints_queued",
                              "hints_replayed", "hints_pending",
                              "replica_writes"):
                    assert field in entry
            # Both replicas hold the key.
            assert sum(entry["keys"] for entry in lines) == 2
            client.close()
        finally:
            cluster.stop()
