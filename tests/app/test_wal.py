"""The per-shard write-ahead log: framing, group commit, crash points.

Three layers of attack, per the durability discipline (NFork-style —
a durability claim is only as good as its fault harness):

* **Framing / recovery basics** — CRC round trips, tombstones, hints
  persisted in the same log, snapshot+compaction replacing replay.
* **Crash-point property sweep** — a scripted write burst is recorded,
  then the log is truncated at *every byte* around each record edge
  (plus seeded random mid-record points) and replayed: exactly the
  committed prefix comes back, never a partial record.
* **Group-commit semantics** — against a fake timer wheel (the
  schedule/fire choreography runs by hand, no wall-clock sleeps):
  N parked writers ack on one fsync; a writer arriving mid-fsync rides
  the next batch; a flush failure surfaces as a monadic exception to
  every parked writer.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import threading
import zlib

import pytest

from repro.app.kv import KvNode
from repro.app.wal import ShardWal, WalError, frame_record, read_frames
from repro.core.do_notation import do
from repro.core.monad import pure
from repro.runtime.live_runtime import LiveRuntime


@pytest.fixture
def rt():
    runtime = LiveRuntime(uncaught="store")
    yield runtime
    runtime.shutdown()


def _drive(rt, comp, idle=5.0):
    results = []

    @do
    def main():
        value = yield comp
        results.append(value)

    rt.spawn(main())
    rt.run(until=lambda: bool(results), idle_timeout=idle)
    assert results, "operation never completed"
    return results[0]


def _spawn_commits(rt, wal, records):
    """Spawn one committing writer per record; returns the done-list."""
    done = []

    @do
    def writer(record):
        acked = yield wal.commit(record)
        done.append(acked)

    for record in records:
        rt.spawn(writer(record), name="wal-writer")
    return done


class _FakeHandle:
    def __init__(self, delay, action):
        self.delay = delay
        self.action = action
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


class _FakeTimers:
    """Records ``schedule`` calls; tests fire the actions by hand."""

    def __init__(self):
        self.scheduled: list[_FakeHandle] = []

    def schedule(self, delay, action):
        handle = _FakeHandle(delay, action)
        self.scheduled.append(handle)
        return pure(handle)

    def fire(self, rt, handle):
        """Run one armed action the way the wheel's sleeper would."""
        result = handle.action()
        if result is not None:
            rt.spawn(result, name="fake-timer-action")


# ----------------------------------------------------------------------
# Framing.
# ----------------------------------------------------------------------
class TestFraming:
    def test_round_trip(self):
        payloads = [b"", b"x", b"hello" * 100, bytes(range(256))]
        data = b"".join(frame_record(p) for p in payloads)
        parsed, good_end = read_frames(data)
        assert parsed == payloads
        assert good_end == len(data)

    def test_crc_rejects_flipped_byte(self):
        data = frame_record(b"payload-one") + frame_record(b"payload-two")
        corrupt = bytearray(data)
        corrupt[len(frame_record(b"payload-one")) + 9] ^= 0x40
        parsed, good_end = read_frames(bytes(corrupt))
        assert parsed == [b"payload-one"]
        assert good_end == len(frame_record(b"payload-one"))

    def test_short_header_and_short_payload_are_torn(self):
        whole = frame_record(b"abcdef")
        for cut in range(len(whole)):
            parsed, good_end = read_frames(whole[:cut])
            assert parsed == []
            assert good_end == 0
        parsed, good_end = read_frames(whole)
        assert parsed == [b"abcdef"]

    def test_crc_is_plain_crc32(self):
        framed = frame_record(b"check")
        crc = int.from_bytes(framed[:4], "little")
        assert crc == zlib.crc32(b"check")


# ----------------------------------------------------------------------
# Recovery basics through a KvNode owner.
# ----------------------------------------------------------------------
class TestRecovery:
    def _node(self, directory, rt=None, **wal_kwargs):
        wal = ShardWal(directory, **wal_kwargs)
        return KvNode(0, 1, wal=wal), wal

    def test_puts_and_tombstones_recover(self, rt, tmp_path):
        directory = str(tmp_path / "shard-0")
        node, wal = self._node(directory)
        for i in range(8):
            _drive(rt, node.put(f"k{i}", b"v%d" % i))
        _drive(rt, node.delete("k3"))
        wal.close()

        node2, wal2 = self._node(directory)
        assert wal2.replayed_records == 9  # 8 puts + 1 delete
        assert node2.store.get("k5") == b"v5"
        assert "k3" not in node2.store
        assert len(node2.store) == 7

    def test_versioned_writes_and_hints_recover(self, rt, tmp_path):
        directory = str(tmp_path / "shard-0")
        node, wal = self._node(directory)
        _drive(rt, wal.commit({"t": "w", "k": "vk", "ver": [7, 2],
                               "v": "aGVsbG8="}))  # b"hello"
        _drive(rt, wal.commit({"t": "hint", "tg": 3, "k": "hk",
                               "ver": [9, 1], "v": "aGk="}))  # b"hi"
        wal.close()

        node2, _wal2 = self._node(directory)
        assert node2.store["vk"] == b"hello"
        assert node2.versions["vk"] == (7, 2)
        assert node2.clock >= 7
        assert node2.hints[3]["hk"] == ((9, 1), b"hi")
        assert node2.hints_pending == 1

    def test_unsynced_pending_records_are_not_acked_state(self, rt,
                                                          tmp_path):
        # A record parked in the pending batch (never flushed) is not on
        # disk: recovery must not see it.  Writers for it never acked.
        directory = str(tmp_path / "shard-0")
        timers = _FakeTimers()
        wal = ShardWal(directory, timers=timers)
        _spawn_commits(rt, wal, [{"t": "raw", "op": "put", "k": "ghost",
                                  "v": None}])
        rt.run(until=lambda: len(wal._pending) == 1, idle_timeout=2.0)
        wal.close()  # crash before the timer ever fired

        node2, wal2 = self._node(directory)
        assert wal2.replayed_records == 0
        assert "ghost" not in node2.store

    def test_compaction_snapshots_and_prunes_segments(self, rt, tmp_path):
        directory = str(tmp_path / "shard-0")
        wal = ShardWal(directory, compact_bytes=512)
        node = KvNode(0, 1, wal=wal)
        for i in range(40):
            _drive(rt, node.put(f"ck{i}", b"value-%d" % i))
        _drive(rt, node.delete("ck7"))
        # The compaction runs inside the flusher; let it finish.
        rt.run(until=lambda: wal.compactions > 0 and not wal._flushing,
               idle_timeout=5.0)
        assert wal.compactions >= 1
        assert os.path.exists(os.path.join(directory, "snapshot.wal"))
        wal.close()

        wal2 = ShardWal(directory)
        node2 = KvNode(0, 1, wal=wal2)
        assert wal2.replayed_snapshot_keys > 0
        # The snapshot absorbed the early records: replay is shorter
        # than the full history.
        assert wal2.replayed_records < 41
        assert len(node2.store) == 39
        assert node2.store["ck39"] == b"value-39"
        assert "ck7" not in node2.store
        wal2.close()

    def test_recover_unlinks_stale_snapshot_tmp(self, tmp_path):
        # A crash mid-compaction leaves snapshot.wal.tmp behind; it was
        # never renamed, so recovery must clear it, not wait for the
        # next compaction to overwrite it.
        directory = str(tmp_path / "shard-0")
        os.makedirs(directory)
        tmp = os.path.join(directory, "snapshot.wal.tmp")
        with open(tmp, "wb") as fh:
            fh.write(b"half-written snapshot")
        wal = ShardWal(directory)
        state, records = wal.recover()
        wal.close()
        assert state is None and records == []
        assert not os.path.exists(tmp)

    def test_recovery_replays_past_torn_segment(self, tmp_path):
        # A failed flush rotates appends to a fresh segment, so acked
        # records legitimately live in segments *past* a torn one.
        # Recovery truncates the tear and keeps replaying.
        directory = str(tmp_path / "rotated")
        os.makedirs(directory)

        def encoded(key):
            return json.dumps({"t": "raw", "op": "put", "k": key,
                               "v": None}).encode()

        torn = frame_record(encoded("torn"))
        seg1 = os.path.join(directory, "wal-00000001.log")
        with open(seg1, "wb") as fh:
            fh.write(frame_record(encoded("a")) + torn[:-3])
        with open(os.path.join(directory, "wal-00000002.log"), "wb") as fh:
            fh.write(frame_record(encoded("b")))
        wal = ShardWal(directory)
        state, records = wal.recover()
        wal.close()
        assert state is None
        assert [record["k"] for record in records] == ["a", "b"]
        assert wal.torn_bytes_truncated == len(torn) - 3
        assert os.path.getsize(seg1) == len(frame_record(encoded("a")))

    def test_stats_shape(self, rt, tmp_path):
        node, wal = self._node(str(tmp_path / "shard-0"))
        _drive(rt, node.put("s", b"1"))
        stats = wal.stats()
        for key in ("wal_appends", "wal_fsyncs", "wal_group_commits",
                    "wal_group_max", "wal_replayed_records",
                    "wal_flush_failures", "wal_compactions"):
            assert key in stats
        assert stats["wal_appends"] == 1
        assert stats["wal_fsyncs"] == 1
        assert node.extra_stats()["wal_appends"] == 1
        assert node.local_stats()["wal"]["wal_fsyncs"] == 1
        wal.close()


# ----------------------------------------------------------------------
# Crash-point property sweep (the committed-prefix invariant).
# ----------------------------------------------------------------------
class TestCrashPointSweep:
    def _record_burst(self, rt, directory):
        """A scripted burst of varied-size records through the real
        commit path; returns the replay-expected record list."""
        wal = ShardWal(directory, timers=rt.timers, flush_interval=0.002)
        records = []
        for i in range(12):
            records.append({
                "t": "w", "k": f"key-{i}", "ver": [i + 1, 0],
                "v": "A" * (4 * ((i * 7) % 11 + 1)),
            })
        done = _spawn_commits(rt, wal, records)
        rt.run(until=lambda: len(done) == len(records), idle_timeout=5.0)
        assert len(done) == len(records)
        wal.close()
        return records

    def test_truncation_sweep_recovers_exactly_committed_prefix(
        self, rt, tmp_path
    ):
        directory = str(tmp_path / "recorded")
        records = self._record_burst(rt, directory)
        segment = os.path.join(directory, "wal-00000001.log")
        with open(segment, "rb") as fh:
            data = fh.read()
        payloads, good_end = read_frames(data)
        assert len(payloads) == len(records)
        assert good_end == len(data)
        # Frame end offsets: a record is committed iff its end <= cut.
        ends = []
        offset = 0
        for payload in payloads:
            offset += len(frame_record(payload))
            ends.append(offset)

        cuts = set()
        for end in ends:
            for delta in range(-3, 4):  # every byte around each edge
                cuts.add(min(len(data), max(0, end + delta)))
        rng = random.Random(0x57A1)
        cuts.update(rng.randrange(len(data) + 1) for _ in range(32))

        scratch = str(tmp_path / "scratch")
        for cut in sorted(cuts):
            if os.path.isdir(scratch):
                shutil.rmtree(scratch)
            os.makedirs(scratch)
            target = os.path.join(scratch, "wal-00000001.log")
            with open(target, "wb") as fh:
                fh.write(data[:cut])
            expected = sum(1 for end in ends if end <= cut)
            replayer = ShardWal(scratch)
            state, replayed = replayer.recover()
            replayer.close()
            assert state is None
            assert len(replayed) == expected, (
                f"cut at {cut}: replayed {len(replayed)}, "
                f"expected {expected}"
            )
            assert replayed == records[:expected]
            # The torn tail was truncated on disk to the good prefix.
            good = ends[expected - 1] if expected else 0
            assert os.path.getsize(target) == good

    def test_mid_record_corruption_never_surfaces_partial(self, rt,
                                                          tmp_path):
        directory = str(tmp_path / "recorded")
        records = self._record_burst(rt, directory)
        segment = os.path.join(directory, "wal-00000001.log")
        with open(segment, "rb") as fh:
            data = fh.read()
        # Flip one byte inside the 5th record's payload.
        payloads, _ = read_frames(data)
        offset = sum(len(frame_record(p)) for p in payloads[:4])
        strike = offset + 8 + 2  # header + 2 bytes into the payload
        corrupt = bytearray(data)
        corrupt[strike] ^= 0xFF
        scratch = str(tmp_path / "scratch")
        os.makedirs(scratch)
        with open(os.path.join(scratch, "wal-00000001.log"), "wb") as fh:
            fh.write(bytes(corrupt))
        replayer = ShardWal(scratch)
        _state, replayed = replayer.recover()
        replayer.close()
        assert replayed == records[:4]


# ----------------------------------------------------------------------
# Group-commit batching semantics (fake wheel, choreography by hand).
# ----------------------------------------------------------------------
class TestGroupCommit:
    def test_n_writers_one_fsync(self, rt, tmp_path):
        timers = _FakeTimers()
        wal = ShardWal(str(tmp_path / "w"), timers=timers)
        records = [{"t": "raw", "op": "put", "k": f"g{i}", "v": None}
                   for i in range(10)]
        done = _spawn_commits(rt, wal, records)
        rt.run(until=lambda: len(wal._pending) == 10, idle_timeout=2.0)
        # All ten writers are parked on one barrier; exactly one flush
        # deadline was armed (by the first writer of the batch).
        assert not done
        assert len(timers.scheduled) == 1
        assert len(wal._barrier.takers) == 10

        timers.fire(rt, timers.scheduled[0])
        rt.run(until=lambda: len(done) == 10, idle_timeout=5.0)
        assert wal.fsyncs == 1
        assert wal.group_commits == 1
        assert wal.group_max_seen == 10
        assert done == [10] * 10  # each writer acked with its group size
        wal.close()

    def test_watermark_flushes_without_waiting_for_deadline(self, rt,
                                                            tmp_path):
        timers = _FakeTimers()
        wal = ShardWal(str(tmp_path / "w"), timers=timers, group_max=4)
        records = [{"t": "raw", "op": "put", "k": f"wm{i}", "v": None}
                   for i in range(4)]
        done = _spawn_commits(rt, wal, records)
        rt.run(until=lambda: len(done) == 4, idle_timeout=5.0)
        # The 4th append hit the watermark: the batch flushed while the
        # armed deadline never fired.
        assert wal.fsyncs == 1
        assert len(timers.scheduled) == 1
        wal.close()

    def test_writer_arriving_mid_fsync_rides_next_batch(self, rt,
                                                        tmp_path):
        timers = _FakeTimers()
        wal = ShardWal(str(tmp_path / "w"), timers=timers)
        sync_started = threading.Event()
        gate = threading.Event()
        real_sync = wal._sync

        def gated_sync(fd):
            sync_started.set()
            assert gate.wait(timeout=10.0), "flush gate never released"
            real_sync(fd)

        wal._sync = gated_sync
        first = _spawn_commits(rt, wal, [{"t": "raw", "op": "put",
                                          "k": "early", "v": None}])
        rt.run(until=lambda: len(wal._pending) == 1, idle_timeout=2.0)
        timers.fire(rt, timers.scheduled[0])
        rt.run(until=sync_started.is_set, idle_timeout=5.0)
        assert sync_started.is_set() and not first

        # Mid-fsync arrival: parks on the *fresh* barrier, arms nothing
        # (the in-flight flusher loops straight into the next batch).
        second = _spawn_commits(rt, wal, [{"t": "raw", "op": "put",
                                           "k": "late", "v": None}])
        rt.run(until=lambda: len(wal._pending) == 1, idle_timeout=2.0)
        assert not second
        assert len(timers.scheduled) == 1

        gate.set()
        rt.run(until=lambda: bool(first) and bool(second),
               idle_timeout=5.0)
        assert wal.fsyncs == 2           # one per batch
        assert wal.group_max_seen == 1   # the batches never merged
        assert first == [1] and second == [1]
        wal.close()

    def test_flush_failure_raises_in_every_parked_writer(self, rt,
                                                         tmp_path):
        timers = _FakeTimers()
        wal = ShardWal(str(tmp_path / "w"), timers=timers)

        def broken_sync(fd):
            raise OSError("simulated disk failure")

        wal._sync = broken_sync
        errors = []

        @do
        def writer(i):
            try:
                yield wal.commit({"t": "raw", "op": "put",
                                  "k": f"f{i}", "v": None})
                errors.append(("acked", i))
            except WalError as exc:
                errors.append(("error", exc))

        for i in range(6):
            rt.spawn(writer(i), name=f"failing-writer-{i}")
        rt.run(until=lambda: len(wal._pending) == 6, idle_timeout=2.0)
        timers.fire(rt, timers.scheduled[0])
        rt.run(until=lambda: len(errors) == 6, idle_timeout=5.0)
        assert [kind for kind, _ in errors] == ["error"] * 6
        assert all(isinstance(exc, WalError) for _, exc in errors)
        assert wal.flush_failures == 1
        assert wal.fsyncs == 0

        # The log is not wedged: with the disk back, commits ack again.
        wal._sync = os.fsync
        done = _spawn_commits(rt, wal, [{"t": "raw", "op": "put",
                                         "k": "after", "v": None}])
        rt.run(until=lambda: len(wal._pending) == 1, idle_timeout=2.0)
        timers.fire(rt, timers.scheduled[-1])
        rt.run(until=lambda: bool(done), idle_timeout=5.0)
        assert wal.fsyncs == 1
        wal.close()

    def test_acked_writes_after_failed_flush_survive_recovery(
        self, rt, tmp_path
    ):
        # The zero-acked-writes-lost guarantee across a *transient*
        # flush failure: the failed batch's torn/unsynced bytes must not
        # poison the segment, so later acked batches replay after a
        # kill -9.  (The failure path restores the pre-batch length and
        # rotates to a fresh segment.)
        directory = str(tmp_path / "shard-0")
        timers = _FakeTimers()
        wal = ShardWal(directory, timers=timers)
        first = _spawn_commits(rt, wal, [{"t": "raw", "op": "put",
                                          "k": "before", "v": None}])
        rt.run(until=lambda: len(wal._pending) == 1, idle_timeout=2.0)
        timers.fire(rt, timers.scheduled[0])
        rt.run(until=lambda: bool(first), idle_timeout=5.0)

        def broken_sync(fd):
            raise OSError("simulated disk failure")

        wal._sync = broken_sync
        errors = []

        @do
        def failing_writer():
            try:
                yield wal.commit({"t": "raw", "op": "put", "k": "torn",
                                  "v": None})
                errors.append("acked")
            except WalError:
                errors.append("error")

        rt.spawn(failing_writer())
        rt.run(until=lambda: len(wal._pending) == 1, idle_timeout=2.0)
        timers.fire(rt, timers.scheduled[-1])
        rt.run(until=lambda: bool(errors), idle_timeout=5.0)
        assert errors == ["error"]
        # The failure rotated appends away from the damaged tail.
        assert wal._segment_index == 2

        wal._sync = os.fsync
        after = _spawn_commits(rt, wal, [{"t": "raw", "op": "put",
                                          "k": "after", "v": None}])
        rt.run(until=lambda: len(wal._pending) == 1, idle_timeout=2.0)
        timers.fire(rt, timers.scheduled[-1])
        rt.run(until=lambda: bool(after), idle_timeout=5.0)
        assert after == [1]
        wal.close()  # kill -9 here

        wal2 = ShardWal(directory)
        node2 = KvNode(0, 1, wal=wal2)
        assert "before" in node2.store
        assert "after" in node2.store
        assert "torn" not in node2.store
        wal2.close()

    def test_flush_now_flushes_pending(self, rt, tmp_path):
        timers = _FakeTimers()
        wal = ShardWal(str(tmp_path / "w"), timers=timers)
        done = _spawn_commits(rt, wal, [
            {"t": "raw", "op": "put", "k": f"fn{i}", "v": None}
            for i in range(2)
        ])
        rt.run(until=lambda: len(wal._pending) == 2, idle_timeout=2.0)
        flushed = _drive(rt, wal.flush_now())
        assert flushed == 2
        rt.run(until=lambda: len(done) == 2, idle_timeout=2.0)
        assert done == [2, 2]
        assert wal.fsyncs == 1
        # Idle log: nothing pending, nothing in flight — resumes with 0.
        assert _drive(rt, wal.flush_now()) == 0
        wal.close()

    def test_flush_now_waits_for_inflight_flush(self, rt, tmp_path):
        # A flush is already in flight when flush_now is called: it must
        # park until that batch is fsync-durable, not resume early.
        timers = _FakeTimers()
        wal = ShardWal(str(tmp_path / "w"), timers=timers)
        sync_started = threading.Event()
        gate = threading.Event()
        real_sync = wal._sync

        def gated_sync(fd):
            sync_started.set()
            assert gate.wait(timeout=10.0), "flush gate never released"
            real_sync(fd)

        wal._sync = gated_sync
        done = _spawn_commits(rt, wal, [{"t": "raw", "op": "put",
                                         "k": "slow", "v": None}])
        rt.run(until=lambda: len(wal._pending) == 1, idle_timeout=2.0)
        timers.fire(rt, timers.scheduled[0])
        rt.run(until=sync_started.is_set, idle_timeout=5.0)

        results = []

        @do
        def waiter():
            count = yield wal.flush_now()
            results.append(count)

        rt.spawn(waiter())
        rt.run(until=lambda: bool(results), idle_timeout=0.3)
        assert not results, "flush_now resumed before the fsync landed"

        gate.set()
        rt.run(until=lambda: bool(results) and bool(done),
               idle_timeout=5.0)
        assert results == [1]
        assert done == [1]
        wal.close()

    def test_close_wakes_parked_writers_with_error(self, rt, tmp_path):
        # Graceful stop with a commit still parked: the armed deadline
        # still fires, and the flusher observes the close and fails the
        # batch instead of leaving the writer parked forever.
        timers = _FakeTimers()
        wal = ShardWal(str(tmp_path / "w"), timers=timers)
        outcomes = []

        @do
        def writer():
            try:
                yield wal.commit({"t": "raw", "op": "put", "k": "x",
                                  "v": None})
                outcomes.append("acked")
            except WalError:
                outcomes.append("error")

        rt.spawn(writer())
        rt.run(until=lambda: len(wal._pending) == 1, idle_timeout=2.0)
        wal.close()
        timers.fire(rt, timers.scheduled[0])
        rt.run(until=lambda: bool(outcomes), idle_timeout=5.0)
        assert outcomes == ["error"]

    def test_commit_after_close_raises(self, rt, tmp_path):
        wal = ShardWal(str(tmp_path / "w"))
        wal.close()
        outcomes = []

        @do
        def writer():
            try:
                yield wal.commit({"t": "raw", "op": "put", "k": "x",
                                  "v": None})
                outcomes.append("acked")
            except WalError:
                outcomes.append("error")

        rt.spawn(writer())
        rt.run(until=lambda: bool(outcomes), idle_timeout=2.0)
        assert outcomes == ["error"]

    def test_node_ack_waits_for_commit(self, rt, tmp_path):
        # End to end through KvNode: a put does not resume before its
        # record's group flush fires.
        timers = _FakeTimers()
        wal = ShardWal(str(tmp_path / "w"), timers=timers)
        node = KvNode(0, 1, wal=wal)
        acked = []

        @do
        def putter():
            result = yield node.put("durable", b"yes")
            acked.append(result)

        rt.spawn(putter())
        rt.run(until=lambda: len(wal._pending) == 1, idle_timeout=2.0)
        assert not acked and node.store["durable"] == b"yes"
        timers.fire(rt, timers.scheduled[0])
        rt.run(until=lambda: bool(acked), idle_timeout=5.0)
        assert acked[0] == (True, None, False)
        assert wal.fsyncs == 1
        wal.close()
