"""Guard the benchmark runners themselves at tiny scale.

The figure benchmarks are the reproduction's deliverable; these tests keep
their runners correct (conservation of bytes, sane rates, cap behavior)
without the full sweeps.
"""

from __future__ import annotations

import pytest

from repro.bench import fig17, fig18, fig19
from repro.bench.harness import (
    Series,
    assert_rises_then_flattens,
    assert_roughly_flat,
    format_table,
    gc_time_share,
    relative_gap,
)
from repro.bench.memory import measure_monadic_thread_bytes
from repro.simos.params import SimParams

SMALL = 2 * 1024 * 1024  # 2MB totals: seconds, not minutes


class TestFig17Runner:
    def test_monadic_conserves_bytes(self):
        result = fig17.run_monadic(8, total_bytes=SMALL)
        assert result["bytes"] == SMALL
        assert result["seconds"] > 0
        assert 0.2 < result["mbps"] < 1.5

    def test_nptl_matches_monadic_when_disk_bound(self):
        monadic = fig17.run_monadic(8, total_bytes=SMALL)
        nptl = fig17.run_nptl(8, total_bytes=SMALL)
        assert nptl is not None
        assert monadic["mbps"] == pytest.approx(nptl["mbps"], rel=0.05)

    def test_nptl_returns_none_past_cap(self):
        params = SimParams().with_overrides(ram_bytes=4 * 32 * 1024)
        assert fig17.run_nptl(5, total_bytes=SMALL, params=params) is None

    def test_queue_depth_tracks_threads(self):
        shallow = fig17.run_monadic(2, total_bytes=SMALL)
        deep = fig17.run_monadic(64, total_bytes=SMALL)
        assert deep["max_queue_depth"] > shallow["max_queue_depth"]
        assert deep["mbps"] > shallow["mbps"]


class TestFig18Runner:
    def test_monadic_conserves_bytes(self):
        result = fig18.run_monadic(0, total_bytes=SMALL)
        assert result["bytes"] >= SMALL
        assert result["cpu_share"] > 0.95  # CPU-bound by construction

    def test_monadic_beats_nptl(self):
        monadic = fig18.run_monadic(0, total_bytes=SMALL)
        nptl = fig18.run_nptl(0, total_bytes=SMALL)
        gap = relative_gap(monadic["mbps"], nptl["mbps"])
        assert 0.10 <= gap <= 0.60

    def test_idle_threads_do_not_change_result_much(self):
        base = fig18.run_monadic(0, total_bytes=SMALL)
        idle = fig18.run_monadic(500, total_bytes=SMALL)
        assert idle["mbps"] == pytest.approx(base["mbps"], rel=0.10)

    def test_nptl_cap(self):
        params = SimParams().with_overrides(ram_bytes=300 * 32 * 1024)
        # 300 stacks cannot hold 256 workers + 100 idlers.
        assert fig18.run_nptl(100, total_bytes=SMALL, params=params) is None


class TestFig19Runner:
    def test_monadic_point(self):
        result = fig19.run_monadic(8, n_files=512, responses_target=60)
        assert result["responses"] >= 60
        assert 0.5 < result["mbps"] < 12.5  # under the wire cap
        assert result["disk_reads"] > 0

    def test_apache_point(self):
        result = fig19.run_apache(8, n_files=512, responses_target=60)
        assert result["responses"] >= 60
        assert result["workers"] == 8
        assert 0.5 < result["mbps"] < 12.5

    def test_apache_worker_cap(self):
        result = fig19.run_apache(
            32, n_files=512, responses_target=40, max_clients=4
        )
        assert result["workers"] == 4
        assert result["responses"] >= 40

    def test_responses_scale_with_target(self):
        small = fig19.run_monadic(4, n_files=512, responses_target=30)
        large = fig19.run_monadic(4, n_files=512, responses_target=90)
        assert large["responses"] >= 3 * small["responses"] - 10


class TestMemoryRunner:
    def test_reports_positive_flat_cost(self):
        a = measure_monadic_thread_bytes(2_000, use_do_notation=False)
        b = measure_monadic_thread_bytes(4_000, use_do_notation=False)
        assert 100 < a["bytes_per_thread"] < 5_000
        assert b["bytes_per_thread"] == pytest.approx(
            a["bytes_per_thread"], rel=0.2
        )


class TestHarness:
    def test_format_table_alignment(self):
        table = format_table(
            "T", "x",
            [Series("alpha", {1: 1.0, 2: 2.0}), Series("beta", {2: 4.0})],
        )
        assert "alpha" in table and "beta" in table
        assert "-" in table.splitlines()[4]  # missing cell placeholder

    def test_rises_then_flattens_accepts_good_curve(self):
        series = Series("s", {1: 1.0, 10: 1.2, 100: 1.3, 1000: 1.29})
        assert_rises_then_flattens(series, min_total_gain=0.2)

    def test_rises_then_flattens_rejects_flat(self):
        series = Series("s", {1: 1.0, 10: 1.01, 100: 1.0, 1000: 1.0})
        with pytest.raises(AssertionError):
            assert_rises_then_flattens(series, min_total_gain=0.2)

    def test_rises_then_flattens_rejects_collapse(self):
        series = Series("s", {1: 1.0, 10: 1.5, 100: 1.6, 1000: 0.5})
        with pytest.raises(AssertionError):
            assert_rises_then_flattens(series, min_total_gain=0.2)

    def test_roughly_flat(self):
        assert_roughly_flat(Series("s", {1: 10.0, 2: 10.5, 3: 9.8}))
        with pytest.raises(AssertionError):
            assert_roughly_flat(Series("s", {1: 10.0, 2: 20.0}), 0.25)

    def test_gc_time_share_runs(self):
        result, share = gc_time_share(lambda: sum(range(10_000)))
        assert result == sum(range(10_000))
        assert 0.0 <= share <= 1.0
