"""Acceptance: off-the-shelf-compatible clients against a replicated
4-shard cluster through the cache front-ends.

The blocking clients speak the real wire protocols (they would work
against memcached / Redis), every shard joins one SO_REUSEPORT cache
port, and owner routing means a single connection — pinned to whichever
shard the kernel picked — answers keys owned by *every* shard.  The
egress-batching acceptance (>1 response frame per gathered write on
pipelined batches) is read back through the control-plane counters.
"""

from __future__ import annotations

import pytest

from repro.app.kv import HashRing, kv_app_factory
from repro.cache.client import (
    BlockingMemcacheClient,
    BlockingRespClient,
    RespError,
)
from repro.http.blocking_client import BlockingHttpClient

SHARDS = 4


def keys_owned_by_every_shard(count_per_shard: int = 4) -> dict[int, list[str]]:
    """Deterministic keys per owning shard, via the same ring the nodes
    build (same shard count, same vnode default)."""
    ring = HashRing(SHARDS)
    owned: dict[int, list[str]] = {index: [] for index in range(SHARDS)}
    index = 0
    while any(len(keys) < count_per_shard for keys in owned.values()):
        key = f"spread:{index}"
        owner = ring.owner(key)
        if len(owned[owner]) < count_per_shard:
            owned[owner].append(key)
        index += 1
    return owned


class TestMemcacheCluster:
    @pytest.fixture(scope="class")
    def cluster(self):
        from repro.runtime.cluster import ClusterServer

        server = ClusterServer(
            kv_app_factory, shards=SHARDS, mesh=True,
            replication=2, write_quorum=1,
            cache_port=0, cache_protocol="memcache", grace=0.1,
        )
        server.start()
        yield server
        server.stop()

    def test_every_shard_answers_any_key(self, cluster):
        owned = keys_owned_by_every_shard()
        all_keys = [key for keys in owned.values() for key in keys]
        with BlockingMemcacheClient(cluster.cache_port) as client:
            # One connection lands on ONE shard; storing and reading
            # keys owned by all four proves owner routing under the
            # memcache dialect.
            for key in all_keys:
                assert client.set(key, f"value-{key}".encode())
            for key in all_keys:
                assert client.get(key) == f"value-{key}".encode()
            values = client.get_many(all_keys)
            assert set(values) == set(all_keys)
        # Fresh connections (any shard) see the same data.
        for _ in range(3):
            with BlockingMemcacheClient(cluster.cache_port) as client:
                values = client.get_many(all_keys)
                assert values == {
                    key: f"value-{key}".encode() for key in all_keys
                }

    def test_pipelined_set_get_delete_and_cas(self, cluster):
        with BlockingMemcacheClient(cluster.cache_port) as client:
            assert client.pipeline_set(
                [(f"pipe:{i}", b"v%d" % i) for i in range(16)]
            ) == 16
            batches = [[f"pipe:{i}" for i in range(j, j + 4)]
                       for j in range(0, 16, 4)]
            replies = client.pipeline_get(batches)
            assert len(replies) == 4
            for j, values in zip(range(0, 16, 4), replies):
                assert values == {
                    f"pipe:{i}": b"v%d" % i for i in range(j, j + 4)
                }
            value, cas = client.gets("pipe:0")
            assert value == b"v0" and isinstance(cas, int)
            assert client.delete("pipe:0")
            assert client.get("pipe:0") is None
            assert not client.delete("pipe:0")

    def test_interop_with_http_facade(self, cluster):
        # One store, two dialects: memcache writes, HTTP reads (and the
        # other way around).
        with BlockingMemcacheClient(cluster.cache_port) as cache:
            assert cache.set("interop:mc", b"from-memcache")
            with BlockingHttpClient(cluster.port) as http:
                status, _, body = http.request("GET", "/kv/interop:mc")
                assert status.endswith("200 OK")
                assert body == b"from-memcache"
                status, _, _ = http.request("PUT", "/kv/interop:http",
                                            b"from-http")
                assert status.split()[1] in ("201", "204")
            assert cache.get("interop:http") == b"from-http"

    def test_batching_counters_visible_in_cluster_stats(self, cluster):
        with BlockingMemcacheClient(cluster.cache_port) as client:
            client.pipeline_set([(f"ctr:{i}", b"x") for i in range(8)])
            client.pipeline_get([[f"ctr:{i}"] for i in range(8)])
        stats = cluster.stats()
        aggregate = stats["aggregate"]["app"]
        assert aggregate["cache_commands"] > 0
        assert aggregate["cache_send_batches"] > 0
        # The acceptance criterion: pipelined batches mean more than one
        # response frame per gathered egress write.
        assert (aggregate["cache_responses"]
                / aggregate["cache_send_batches"]) > 1
        assert aggregate["cache_pipelined_batches"] > 0
        assert aggregate["cache_max_responses_per_batch"] > 1
        assert stats["aggregate"]["workers_reporting"] == SHARDS


class TestRespCluster:
    @pytest.fixture(scope="class")
    def cluster(self):
        from repro.runtime.cluster import ClusterServer

        server = ClusterServer(
            kv_app_factory, shards=SHARDS, mesh=True,
            replication=2, write_quorum=1,
            cache_port=0, cache_protocol="resp", grace=0.1,
        )
        server.start()
        yield server
        server.stop()

    def test_every_shard_answers_any_key(self, cluster):
        owned = keys_owned_by_every_shard()
        all_keys = [key for keys in owned.values() for key in keys]
        with BlockingRespClient(cluster.cache_port) as client:
            assert client.execute("PING") == "PONG"
            for key in all_keys:
                assert client.execute("SET", key, f"v-{key}") == "OK"
            values = client.execute("MGET", *all_keys)
            assert values == [f"v-{key}".encode() for key in all_keys]
            assert client.execute("DEL", all_keys[0]) == 1
            assert client.execute("GET", all_keys[0]) is None

    def test_pipelined_mixed_commands(self, cluster):
        with BlockingRespClient(cluster.cache_port) as client:
            replies = client.pipeline(
                [("SET", "p:a", "1"), ("SET", "p:b", "2"),
                 ("MGET", "p:a", "p:b", "p:ghost"),
                 ("EXISTS", "p:a", "p:ghost"),
                 ("UNKNOWNCMD",), ("PING",)]
            )
            assert replies[0] == "OK" and replies[1] == "OK"
            assert replies[2] == [b"1", b"2", None]
            assert replies[3] == 1
            assert isinstance(replies[4], RespError)
            assert replies[5] == "PONG"

    def test_interop_with_http_facade(self, cluster):
        with BlockingRespClient(cluster.cache_port) as cache:
            assert cache.execute("SET", "interop:resp", b"from-resp") == "OK"
            with BlockingHttpClient(cluster.port) as http:
                status, _, body = http.request("GET", "/kv/interop:resp")
                assert status.endswith("200 OK")
                assert body == b"from-resp"
