"""Memcache fidelity: real ``flags`` round-trips and honored ``exptime``.

Wire level reuses the live-protocol harness (raw monadic client against
a :func:`build_cache_frontend`); expiry-arming mechanics run against a
fake timer wheel so the schedule/cancel/supersede choreography is
asserted without wall-clock sleeps — plus one real-wheel test that lets
a one-second expiry actually fire.
"""

from __future__ import annotations

import time
import zlib

import pytest

from repro.app.kv import KvNode
from repro.cache import build_cache_frontend
from repro.core.do_notation import do
from repro.core.monad import pure
from repro.runtime.live_runtime import LiveRuntime


@pytest.fixture
def rt():
    runtime = LiveRuntime(uncaught="store")
    yield runtime
    runtime.shutdown()


def _start(rt, store=None, **kwargs):
    listener = rt.make_listener()
    node = store if store is not None else KvNode(0, 1)
    frontend = build_cache_frontend(rt, listener, node,
                                    protocol="memcache", **kwargs)
    rt.spawn(frontend.main(), name="cache-memcache")
    return frontend, node, listener.getsockname()[1]


def _drive(rt, port, payload, done=None):
    collected = bytearray()
    finished = []

    @do
    def client():
        conn = yield rt.io.connect(("127.0.0.1", port))
        yield rt.io.write_all(conn, payload)
        while done is None or not done(bytes(collected)):
            data = yield rt.io.read(conn, 65536)
            if not data:
                break
            collected.extend(data)
        finished.append(True)
        yield rt.io.close(conn)

    rt.spawn(client(), name="cache-raw-client")
    rt.run(until=lambda: bool(finished), idle_timeout=5.0)
    assert finished, "client never completed"
    return bytes(collected)


class _FakeHandle:
    def __init__(self, delay, action):
        self.delay = delay
        self.action = action
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


class _FakeTimers:
    """Records ``schedule`` calls; tests fire the actions by hand."""

    def __init__(self):
        self.scheduled: list[_FakeHandle] = []

    def schedule(self, delay, action):
        handle = _FakeHandle(delay, action)
        self.scheduled.append(handle)
        return pure(handle)

    def live(self):
        return [h for h in self.scheduled if not h.cancelled]


class TestFlagsRoundTrip:
    def test_get_echoes_stored_flags(self, rt):
        _frontend, _node, port = _start(rt)
        payload = b"set k 42 0 5\r\nhello\r\nget k\r\n"
        expected = b"STORED\r\nVALUE k 42 5\r\nhello\r\nEND\r\n"
        data = _drive(rt, port, payload, done=lambda got: got == expected)
        assert data == expected

    def test_gets_echoes_flags_beside_cas(self, rt):
        _frontend, _node, port = _start(rt)
        cas = zlib.crc32(b"hello")
        payload = b"set k 7 0 5\r\nhello\r\ngets k\r\n"
        expected = (b"STORED\r\nVALUE k 7 5 %d\r\nhello\r\nEND\r\n" % cas)
        data = _drive(rt, port, payload, done=lambda got: got == expected)
        assert data == expected

    def test_reset_replaces_flags(self, rt):
        _frontend, _node, port = _start(rt)
        payload = (b"set k 9 0 1\r\nA\r\n"
                   b"set k 0 0 1\r\nB\r\n"
                   b"get k\r\n")
        expected = b"STORED\r\nSTORED\r\nVALUE k 0 1\r\nB\r\nEND\r\n"
        data = _drive(rt, port, payload, done=lambda got: got == expected)
        assert data == expected

    def test_default_flags_store_no_metadata(self, rt):
        frontend, _node, port = _start(rt)
        payload = b"set k 0 0 1\r\nx\r\nget k\r\n"
        expected = b"STORED\r\nVALUE k 0 1\r\nx\r\nEND\r\n"
        _drive(rt, port, payload, done=lambda got: got == expected)
        assert frontend.protocol._meta == {}

    def test_delete_drops_metadata(self, rt):
        frontend, _node, port = _start(rt)
        payload = b"set k 3 0 1\r\nx\r\ndelete k\r\n"
        expected = b"STORED\r\nDELETED\r\n"
        _drive(rt, port, payload, done=lambda got: got == expected)
        assert frontend.protocol._meta == {}


class TestExptimeArming:
    def test_relative_exptime_arms_the_wheel(self, rt):
        timers = _FakeTimers()
        frontend, _node, port = _start(rt, timers=timers)
        payload = b"set k 0 300 1\r\nx\r\n"
        _drive(rt, port, payload, done=lambda got: got == b"STORED\r\n")
        assert [h.delay for h in timers.live()] == [300.0]
        flags, deadline = frontend.protocol._meta["k"]
        assert flags == 0 and deadline is not None

    def test_absolute_exptime_converts_to_delay(self, rt):
        timers = _FakeTimers()
        _frontend, _node, port = _start(rt, timers=timers)
        exptime = int(time.time()) + 120
        payload = b"set k 0 %d 1\r\nx\r\n" % exptime
        _drive(rt, port, payload, done=lambda got: got == b"STORED\r\n")
        (handle,) = timers.live()
        assert 115 < handle.delay <= 121

    def test_absolute_past_exptime_expires_immediately(self, rt):
        # Any exptime beyond 30 days is an absolute unix timestamp;
        # 2592001 is in 1970, so the value dies on arrival.
        timers = _FakeTimers()
        _frontend, node, port = _start(rt, timers=timers)
        payload = b"set k 0 2592001 1\r\nx\r\nget k\r\n"
        expected = b"STORED\r\nEND\r\n"
        data = _drive(rt, port, payload, done=lambda got: got == expected)
        assert data == expected
        assert node.store == {}
        assert timers.scheduled == []  # nothing to arm: already dead

    def test_reset_cancels_pending_expiry(self, rt):
        timers = _FakeTimers()
        frontend, node, port = _start(rt, timers=timers)
        payload = b"set k 0 300 1\r\nA\r\nset k 0 0 1\r\nB\r\n"
        _drive(rt, port, payload,
               done=lambda got: got == b"STORED\r\nSTORED\r\n")
        assert timers.live() == []
        assert timers.scheduled[0].cancelled
        # A stale sweep firing anyway (cancel is lazy in the real
        # wheel) must stand down: the handle is no longer current.
        assert timers.scheduled[0].action() is None
        assert node.store == {"k": b"B"}

    def test_delete_cancels_pending_expiry(self, rt):
        timers = _FakeTimers()
        _frontend, _node, port = _start(rt, timers=timers)
        payload = b"set k 0 300 1\r\nA\r\ndelete k\r\n"
        _drive(rt, port, payload,
               done=lambda got: got == b"STORED\r\nDELETED\r\n")
        assert timers.live() == []

    def test_sweep_forks_the_store_delete(self, rt):
        timers = _FakeTimers()
        _frontend, node, port = _start(rt, timers=timers)
        payload = b"set k 0 300 1\r\nA\r\n"
        _drive(rt, port, payload, done=lambda got: got == b"STORED\r\n")
        (handle,) = timers.live()
        forked = handle.action()  # the deadline passes
        assert forked is not None  # a sys_fork of the delete

        @do
        def run_sweep():
            yield forked

        rt.spawn(run_sweep(), name="sweep")
        rt.run(until=lambda: "k" not in node.store, idle_timeout=5.0)
        assert node.store == {}

    def test_lazy_get_check_hides_expired_value(self, rt):
        # The wheel's sweep may lag its deadline (it never fires here at
        # all); a get past the deadline still reports a miss.
        timers = _FakeTimers()
        _frontend, node, port = _start(rt, timers=timers)
        _drive(rt, port, b"set k 0 1 1\r\nA\r\n",
               done=lambda got: got == b"STORED\r\n")
        deadline = _frontend.protocol._meta["k"][1]
        _frontend.protocol._meta["k"] = (0, deadline - 2.0)  # now past
        data = _drive(rt, port, b"get k\r\n",
                      done=lambda got: got == b"END\r\n")
        assert data == b"END\r\n"
        assert "k" in node.store  # only the reply hides it; sweep cleans

    def test_without_timers_exptime_is_ignored(self, rt):
        frontend, _node, port = _start(rt, timers=None)
        payload = b"set k 5 300 1\r\nx\r\nget k\r\n"
        expected = b"STORED\r\nVALUE k 5 1\r\nx\r\nEND\r\n"
        data = _drive(rt, port, payload, done=lambda got: got == expected)
        assert data == expected
        assert frontend.protocol._meta == {"k": (5, None)}


class TestExptimeLive:
    def test_one_second_expiry_fires_through_the_real_wheel(self, rt):
        frontend, node, port = _start(rt)  # rt.timers rides along
        assert frontend.protocol.timers is rt.timers
        payload = b"set k 0 1 1\r\nx\r\nget k\r\n"
        expected = b"STORED\r\nVALUE k 0 1\r\nx\r\nEND\r\n"
        data = _drive(rt, port, payload, done=lambda got: got == expected)
        assert data == expected  # alive inside the window
        rt.run(until=lambda: "k" not in node.store, idle_timeout=5.0)
        assert node.store == {}
        data = _drive(rt, port, b"get k\r\n",
                      done=lambda got: got == b"END\r\n")
        assert data == b"END\r\n"
