"""The memcache text-protocol parser: framing, validation, byte splits."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cache.base import CacheParseError
from repro.cache.memcache import MemcacheParser


def parse_all(raw: bytes) -> list[tuple]:
    parser = MemcacheParser()
    parser.feed(raw)
    commands = []
    while (command := parser.next_command()) is not None:
        commands.append(command)
    return commands


class TestCommandLines:
    def test_get_single_key(self):
        assert parse_all(b"get alpha\r\n") == [("get", ["alpha"], False)]

    def test_get_multi_key(self):
        assert parse_all(b"get a b c\r\n") == [("get", ["a", "b", "c"], False)]

    def test_gets_sets_cas_flag(self):
        assert parse_all(b"gets a\r\n") == [("get", ["a"], True)]

    def test_set_with_data_block(self):
        assert parse_all(b"set k 0 0 5\r\nhello\r\n") == [
            ("set", "k", 0, 0, False, b"hello")
        ]

    def test_set_noreply(self):
        assert parse_all(b"set k 7 60 2 noreply\r\nhi\r\n") == [
            ("set", "k", 7, 60, True, b"hi")
        ]

    def test_value_may_contain_crlf(self):
        # The data block is length-framed: embedded CRLFs are data.
        assert parse_all(b"set k 0 0 9\r\nab\r\ncd\r\ne\r\n") == [
            ("set", "k", 0, 0, False, b"ab\r\ncd\r\ne")
        ]

    def test_delete(self):
        assert parse_all(b"delete k\r\n") == [("delete", "k", False)]
        assert parse_all(b"delete k noreply\r\n") == [("delete", "k", True)]
        # Legacy numeric delay argument is tolerated.
        assert parse_all(b"delete k 0\r\n") == [("delete", "k", False)]

    def test_admin_commands(self):
        assert parse_all(b"stats\r\nversion\r\nquit\r\n") == [
            ("stats",), ("version",), ("quit",)
        ]

    def test_pipelined_burst(self):
        commands = parse_all(
            b"set a 0 0 1\r\nx\r\nget a b\r\ndelete a\r\nget a\r\n"
        )
        assert [command[0] for command in commands] == [
            "set", "get", "delete", "get"
        ]


class TestRecoverableErrors:
    def test_empty_line_is_error_command(self):
        assert parse_all(b"\r\n") == [("error", b"ERROR\r\n")]

    def test_get_without_keys(self):
        assert parse_all(b"get\r\n") == [("error", b"ERROR\r\n")]

    def test_bad_key_rejected_in_band(self):
        (command,) = parse_all(b"get " + b"k" * 251 + b"\r\n")
        assert command[0] == "error"
        (command,) = parse_all(b"get k\x01ey\r\n")
        assert command[0] == "error"

    def test_unimplemented_storage_consumes_data(self):
        # add/replace/... must consume their data block (stream stays
        # framed) and answer ERROR in-band.
        commands = parse_all(b"add k 0 0 5\r\nhello\r\nget k\r\n")
        assert commands == [("unsupported", "add", False),
                            ("get", ["k"], False)]

    def test_line_only_unsupported(self):
        assert parse_all(b"incr k 1\r\n") == [("unsupported", "incr", False)]

    def test_bad_flags_still_consumes_data(self):
        commands = parse_all(b"set k pony 0 4\r\nbody\r\nget k\r\n")
        assert commands[0][0] == "error"
        assert commands[1] == (("get", ["k"], False))


class TestFatalErrors:
    def test_unknown_command_is_fatal(self):
        parser = MemcacheParser()
        with pytest.raises(CacheParseError):
            parser.feed(b"frobnicate k\r\n")

    def test_unparseable_byte_count_is_fatal(self):
        parser = MemcacheParser()
        with pytest.raises(CacheParseError):
            parser.feed(b"set k 0 0 pony\r\n")

    def test_bad_data_chunk_terminator_is_fatal(self):
        parser = MemcacheParser()
        with pytest.raises(CacheParseError):
            parser.feed(b"set k 0 0 4\r\nbodyXX")

    def test_oversized_value_is_fatal(self):
        parser = MemcacheParser(max_value_bytes=100)
        with pytest.raises(CacheParseError) as info:
            parser.feed(b"set k 0 0 101\r\n")
        assert b"SERVER_ERROR" in info.value.reply

    def test_oversized_line_is_fatal(self):
        parser = MemcacheParser()
        with pytest.raises(CacheParseError):
            parser.feed(b"get " + b"k " * 5000)


class TestByteSplitInvariance:
    RAW = (
        b"set alpha 0 0 5\r\nhello\r\n"
        b"get alpha beta\r\n"
        b"gets alpha\r\n"
        b"set beta 3 9 6 noreply\r\nw\r\norl\r\n"
        b"delete alpha\r\n"
        b"quit\r\n"
    )

    @given(st.lists(st.integers(1, 23), max_size=40))
    def test_any_split_parses_identically(self, cut_sizes):
        """Feeding the same bytes in any chunking parses identically —
        the same invariant the HTTP parser pins down."""
        expected = parse_all(self.RAW)
        parser = MemcacheParser()
        position = 0
        for size in cut_sizes:
            parser.feed(self.RAW[position:position + size])
            position += size
        parser.feed(self.RAW[position:])
        got = []
        while (command := parser.next_command()) is not None:
            got.append(command)
        assert got == expected
        assert parser.buffered == 0
