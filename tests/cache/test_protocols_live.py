"""The cache protocols end to end on one live runtime.

A monadic raw client drives real sockets against a
:func:`~repro.cache.frontend.build_cache_frontend` over a single-owner
:class:`~repro.app.kv.KvNode`; the egress-batching claims are asserted
through the backend's syscall counters, the same in-process method the
HTTP gathered-write tests use.
"""

from __future__ import annotations

import zlib

import pytest

from repro.app.kv import KvNode
from repro.cache import build_cache_frontend
from repro.core.do_notation import do
from repro.core.monad import pure
from repro.runtime.live_runtime import HAS_SENDMSG, LiveRuntime


@pytest.fixture
def rt():
    runtime = LiveRuntime(uncaught="store")
    yield runtime
    runtime.shutdown()


def _start(rt, protocol, store=None, **kwargs):
    listener = rt.make_listener()
    node = store if store is not None else KvNode(0, 1)
    frontend = build_cache_frontend(rt, listener, node, protocol=protocol,
                                    **kwargs)
    rt.spawn(frontend.main(), name=f"cache-{protocol}")
    return frontend, node, listener.getsockname()[1]


def _drive(rt, port, payload, done=None, client_writes=None):
    """Send ``payload`` in one write; collect replies until ``done(bytes)``
    (or server close when ``done`` is None), then close."""
    collected = bytearray()
    finished = []

    @do
    def client():
        conn = yield rt.io.connect(("127.0.0.1", port))
        yield rt.io.write_all(conn, payload)
        if client_writes is not None:
            client_writes.append(1)
        while done is None or not done(bytes(collected)):
            data = yield rt.io.read(conn, 65536)
            if not data:
                break
            collected.extend(data)
        finished.append(True)
        yield rt.io.close(conn)

    rt.spawn(client(), name="cache-raw-client")
    rt.run(until=lambda: bool(finished), idle_timeout=5.0)
    assert finished, "client never completed"
    return bytes(collected)


class ExplodingStore:
    """A store whose every operation fails monadically."""

    def get(self, key, info=None):
        return self._boom()

    put = delete = get

    def mget(self, keys):
        return self._boom()

    def extra_stats(self):
        return {}

    @do
    def _boom(self):
        yield pure(None)
        raise RuntimeError("store down")


class TestMemcacheLive:
    def test_pipelined_round_trip(self, rt):
        _frontend, _node, port = _start(rt, "memcache")
        cas = zlib.crc32(b"hello")
        payload = (
            b"set k 0 0 5\r\nhello\r\n"
            b"get k\r\n"
            b"gets k\r\n"
            b"delete k\r\n"
            b"get k\r\n"
        )
        expected = (
            b"STORED\r\n"
            b"VALUE k 0 5\r\nhello\r\nEND\r\n"
            + b"VALUE k 0 5 %d\r\nhello\r\nEND\r\n" % cas
            + b"DELETED\r\nEND\r\n"
        )
        data = _drive(rt, port, payload,
                      done=lambda got: got == expected)
        assert data == expected

    def test_multi_key_get_and_noreply(self, rt):
        _frontend, node, port = _start(rt, "memcache")
        payload = (
            b"set a 0 0 1 noreply\r\nA\r\n"
            b"set b 0 0 1 noreply\r\nB\r\n"
            b"get a b ghost\r\n"
        )
        expected = (
            b"VALUE a 0 1\r\nA\r\nVALUE b 0 1\r\nB\r\nEND\r\n"
        )
        data = _drive(rt, port, payload, done=lambda got: got == expected)
        assert data == expected
        assert node.store == {"a": b"A", "b": b"B"}

    @pytest.mark.skipif(not HAS_SENDMSG, reason="no sendmsg on this platform")
    def test_pipelined_batch_is_one_syscall(self, rt):
        frontend, node, port = _start(rt, "memcache")
        requests = 8
        for index in range(requests):
            node.store[f"key-{index}"] = b"v%d" % index
        payload = b"".join(
            b"get key-%d\r\n" % index for index in range(requests)
        )
        client_writes: list[int] = []
        before = rt.backend.write_syscalls
        data = _drive(
            rt, port, payload,
            done=lambda got: got.count(b"END\r\n") == requests,
            client_writes=client_writes,
        )
        assert data.count(b"END\r\n") == requests
        server_writes = (
            rt.backend.write_syscalls - before - len(client_writes)
        )
        # The whole pipelined burst arrives in one read, so all eight
        # replies leave as ONE gathered write.
        assert server_writes == 1
        stats = frontend.stats
        assert stats.send_batches == 1
        assert stats.responses == requests
        assert stats.pipelined_batches == 1
        assert stats.max_responses_per_batch == requests
        assert stats.responses / stats.send_batches > 1

    def test_stats_and_version(self, rt):
        _frontend, _node, port = _start(rt, "memcache")
        data = _drive(rt, port, b"version\r\n",
                      done=lambda got: got.endswith(b"\r\n"))
        assert data.startswith(b"VERSION ")
        data = _drive(rt, port, b"stats\r\n",
                      done=lambda got: got.endswith(b"END\r\n"))
        assert b"STAT kv_keys 0\r\n" in data
        assert b"STAT commands " in data

    def test_parse_error_answers_then_closes(self, rt):
        _frontend, _node, port = _start(rt, "memcache")
        # Unparseable byte count: reply in flight, then EOF (read to
        # close proves the drain-close happened).
        data = _drive(rt, port, b"set k 0 0 pony\r\n")
        assert data == b"CLIENT_ERROR bad command line format\r\n"

    def test_store_failure_is_server_error_not_hangup(self, rt):
        _frontend, _node, port = _start(rt, "memcache",
                                        store=ExplodingStore())
        payload = b"get k\r\nversion\r\n"
        data = _drive(
            rt, port, payload,
            done=lambda got: got.count(b"\r\n") >= 2,
        )
        assert data.startswith(b"SERVER_ERROR RuntimeError: store down\r\n")
        # The connection survived the store failure.
        assert b"VERSION " in data

    def test_unsupported_storage_command_stays_framed(self, rt):
        _frontend, _node, port = _start(rt, "memcache")
        payload = b"add k 0 0 5\r\nhello\r\nversion\r\n"
        data = _drive(rt, port, payload,
                      done=lambda got: b"VERSION" in got)
        assert data.startswith(b"ERROR\r\nVERSION ")

    def test_quit_closes(self, rt):
        _frontend, _node, port = _start(rt, "memcache")
        data = _drive(rt, port, b"quit\r\n")
        assert data == b""

    def test_shed_payload_is_preencoded(self, rt):
        frontend, _node, _port = _start(rt, "memcache")
        assert frontend.protocol.shed_payload() == (
            b"SERVER_ERROR connection capacity reached\r\n"
        )


def resp(*args: bytes) -> bytes:
    return b"*%d\r\n" % len(args) + b"".join(
        b"$%d\r\n%s\r\n" % (len(arg), arg) for arg in args
    )


class TestRespLive:
    def test_pipelined_round_trip(self, rt):
        _frontend, _node, port = _start(rt, "resp")
        binary = b"\x00\r\n\xff"
        payload = (
            resp(b"PING")
            + resp(b"SET", b"alpha", b"hello")
            + resp(b"SET", b"bin", binary)
            + resp(b"GET", b"alpha")
            + resp(b"GET", b"bin")
            + resp(b"MGET", b"alpha", b"ghost", b"bin")
            + resp(b"EXISTS", b"alpha", b"ghost")
            + resp(b"DEL", b"alpha", b"ghost")
            + resp(b"GET", b"alpha")
        )
        expected = (
            b"+PONG\r\n"
            b"+OK\r\n"
            b"+OK\r\n"
            b"$5\r\nhello\r\n"
            + b"$%d\r\n%s\r\n" % (len(binary), binary)
            + b"*3\r\n$5\r\nhello\r\n$-1\r\n"
            + b"$%d\r\n%s\r\n" % (len(binary), binary)
            + b":1\r\n"
            b":1\r\n"
            b"$-1\r\n"
        )
        data = _drive(rt, port, payload, done=lambda got: got == expected)
        assert data == expected

    def test_inline_commands(self, rt):
        _frontend, _node, port = _start(rt, "resp")
        data = _drive(rt, port, b"PING\r\n",
                      done=lambda got: got == b"+PONG\r\n")
        assert data == b"+PONG\r\n"

    def test_handshake_chatter(self, rt):
        _frontend, _node, port = _start(rt, "resp")
        payload = (
            resp(b"CLIENT", b"SETINFO", b"lib-name", b"redis-py")
            + resp(b"SELECT", b"0")
            + resp(b"HELLO", b"3")
            + resp(b"PING")
        )
        data = _drive(rt, port, payload,
                      done=lambda got: got.endswith(b"+PONG\r\n"))
        assert data.startswith(b"+OK\r\n+OK\r\n-ERR unknown command")

    def test_set_options_refused(self, rt):
        _frontend, _node, port = _start(rt, "resp")
        payload = resp(b"SET", b"k", b"v", b"EX", b"60") + resp(b"PING")
        data = _drive(rt, port, payload,
                      done=lambda got: got.endswith(b"+PONG\r\n"))
        assert data.startswith(b"-ERR SET options are not supported\r\n")

    def test_store_failure_is_err_not_hangup(self, rt):
        _frontend, _node, port = _start(rt, "resp", store=ExplodingStore())
        payload = resp(b"GET", b"k") + resp(b"PING")
        data = _drive(rt, port, payload,
                      done=lambda got: got.endswith(b"+PONG\r\n"))
        assert data.startswith(b"-ERR RuntimeError: store down\r\n")

    def test_protocol_error_closes(self, rt):
        _frontend, _node, port = _start(rt, "resp")
        data = _drive(rt, port, b"*1\r\n:5\r\n")
        assert data.startswith(b"-ERR Protocol error")

    def test_quit_replies_then_closes(self, rt):
        _frontend, _node, port = _start(rt, "resp")
        data = _drive(rt, port, resp(b"QUIT") + resp(b"PING"))
        # +OK for QUIT, then close: the pipelined PING is never answered.
        assert data == b"+OK\r\n"

    @pytest.mark.skipif(not HAS_SENDMSG, reason="no sendmsg on this platform")
    def test_pipelined_batch_is_one_syscall(self, rt):
        frontend, node, port = _start(rt, "resp")
        requests = 10
        for index in range(requests):
            node.store[f"key-{index}"] = b"value"
        payload = b"".join(
            resp(b"GET", b"key-%d" % index) for index in range(requests)
        )
        client_writes: list[int] = []
        before = rt.backend.write_syscalls
        data = _drive(
            rt, port, payload,
            done=lambda got: got.count(b"$5\r\nvalue\r\n") == requests,
            client_writes=client_writes,
        )
        assert data == b"$5\r\nvalue\r\n" * requests
        server_writes = (
            rt.backend.write_syscalls - before - len(client_writes)
        )
        assert server_writes == 1
        assert frontend.stats.responses == requests
        assert frontend.stats.send_batches == 1
