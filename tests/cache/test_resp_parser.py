"""The RESP2 parser: array framing, inline commands, byte splits."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cache.base import CacheParseError
from repro.cache.resp import RespParser


def encode(*args: bytes) -> bytes:
    return b"*%d\r\n" % len(args) + b"".join(
        b"$%d\r\n%s\r\n" % (len(arg), arg) for arg in args
    )


def parse_all(raw: bytes) -> list[list[bytes]]:
    parser = RespParser()
    parser.feed(raw)
    commands = []
    while (command := parser.next_command()) is not None:
        commands.append(command)
    return commands


class TestArrayCommands:
    def test_simple_command(self):
        assert parse_all(encode(b"GET", b"key")) == [[b"GET", b"key"]]

    def test_binary_safe_values(self):
        value = b"\x00\r\n\xff binary"
        assert parse_all(encode(b"SET", b"k", value)) == [[b"SET", b"k", value]]

    def test_empty_bulk(self):
        assert parse_all(encode(b"SET", b"k", b"")) == [[b"SET", b"k", b""]]

    def test_pipelined_commands(self):
        raw = encode(b"SET", b"a", b"1") + encode(b"GET", b"a") + encode(b"PING")
        assert parse_all(raw) == [
            [b"SET", b"a", b"1"], [b"GET", b"a"], [b"PING"]
        ]

    def test_empty_arrays_ignored(self):
        assert parse_all(b"*0\r\n*-1\r\n" + encode(b"PING")) == [[b"PING"]]


class TestInlineCommands:
    def test_inline_split(self):
        assert parse_all(b"PING\r\nGET  key\r\n") == [[b"PING"], [b"GET", b"key"]]

    def test_blank_inline_ignored(self):
        assert parse_all(b"\r\n  \r\nPING\r\n") == [[b"PING"]]


class TestFatalErrors:
    def test_bad_multibulk_length(self):
        parser = RespParser()
        with pytest.raises(CacheParseError):
            parser.feed(b"*pony\r\n")

    def test_reply_prefix_in_command_position(self):
        parser = RespParser()
        with pytest.raises(CacheParseError):
            parser.feed(b"+OK\r\n")

    def test_non_bulk_element(self):
        parser = RespParser()
        with pytest.raises(CacheParseError):
            parser.feed(b"*1\r\n:5\r\n")

    def test_bad_bulk_length(self):
        parser = RespParser()
        with pytest.raises(CacheParseError):
            parser.feed(b"*1\r\n$x\r\n")

    def test_oversized_bulk(self):
        parser = RespParser(max_bulk_bytes=64)
        with pytest.raises(CacheParseError):
            parser.feed(b"*2\r\n$3\r\nSET\r\n$100\r\n")

    def test_bulk_not_crlf_terminated(self):
        parser = RespParser()
        with pytest.raises(CacheParseError):
            parser.feed(b"*1\r\n$4\r\nPINGXX")

    def test_unbounded_line(self):
        parser = RespParser()
        with pytest.raises(CacheParseError):
            parser.feed(b"x" * 10000)


class TestByteSplitInvariance:
    RAW = (
        encode(b"SET", b"alpha", b"hello world")
        + encode(b"MGET", b"alpha", b"beta", b"gamma")
        + b"PING\r\n"
        + encode(b"DEL", b"alpha")
        + encode(b"SET", b"bin", b"\x00\r\n\xff")
    )

    @given(st.lists(st.integers(1, 19), max_size=40))
    def test_any_split_parses_identically(self, cut_sizes):
        expected = parse_all(self.RAW)
        parser = RespParser()
        position = 0
        for size in cut_sizes:
            parser.feed(self.RAW[position:position + size])
            position += size
        parser.feed(self.RAW[position:])
        got = []
        while (command := parser.next_command()) is not None:
            got.append(command)
        assert got == expected
        assert parser.buffered == 0
