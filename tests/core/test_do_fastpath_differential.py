"""Differential tests: the ``@do`` fast path against the slow reference.

:func:`repro.core.do_notation.do` drives generators through the scheduler
(``SysGen`` — the generator *is* the continuation); :func:`do_slow` is the
original closure-trampoline driver kept as the executable reference.  Both
must be observably identical: same results, same exception types and
ordering, same side-effect order, same node counts (``total_syscalls`` /
per-TCB ``syscall_count`` — the simulator charges virtual time per node, so
count parity is a semantic requirement, not an optimization detail).

Every test here builds one program, runs it through both decorators on
fresh schedulers, and compares everything observable.
"""

from __future__ import annotations

import gc
import sys

from hypothesis import given, settings, strategies as st

from repro.core.do_notation import do, do_slow
from repro.core.exceptions import ThreadKilled
from repro.core.monad import pure
from repro.core.scheduler import Scheduler
from repro.core.syscalls import sys_catch, sys_nbio, sys_sleep, sys_throw, sys_yield


def run_differential(build, *, batch_limit=128):
    """Run ``build(do_impl, log)``'s thread(s) under both drivers.

    ``build`` returns one computation (or a list of them) when given a
    ``@do``-equivalent decorator and a shared side-effect log.  Returns the
    two observation dicts (fast first) for the caller to assert equality.
    """
    observations = []
    for impl in (do, do_slow):
        log: list = []
        sched = Scheduler(batch_limit=batch_limit, uncaught="store")
        comps = build(impl, log)
        if not isinstance(comps, list):
            comps = [comps]
        tcbs = [sched.spawn(comp) for comp in comps]
        sched.run()
        observations.append(
            {
                "log": log,
                "results": [t.result for t in tcbs],
                "errors": [type(t.error).__name__ if t.error else None for t in tcbs],
                "states": [t.state for t in tcbs],
                "syscall_counts": [t.syscall_count for t in tcbs],
                "total_syscalls": sched.total_syscalls,
                "uncaught": [type(e).__name__ for _t, e in sched.uncaught_errors],
            }
        )
    return observations


def assert_identical(build, **kwargs):
    fast, slow = run_differential(build, **kwargs)
    assert fast == slow, f"fast/slow divergence:\nfast: {fast}\nslow: {slow}"
    return fast


class TestReturnAndResults:
    def test_plain_return_value(self):
        def build(impl, log):
            @impl
            def prog():
                a = yield pure(20)
                b = yield pure(22)
                return a + b

            return prog()

        obs = assert_identical(build)
        assert obs["results"] == [42]

    def test_yields_mixing_pure_and_suspension(self):
        def build(impl, log):
            @impl
            def prog():
                total = 0
                for i in range(5):
                    total += yield pure(i)
                    yield sys_yield()
                    total += yield sys_nbio(lambda i=i: i * 10)
                return total

            return prog()

        obs = assert_identical(build)
        assert obs["results"] == [sum(range(5)) + sum(10 * i for i in range(5))]

    def test_nested_do_calls(self):
        def build(impl, log):
            @impl
            def inner(x):
                yield sys_yield()
                log.append(("inner", x))
                return x * 2

            @impl
            def outer():
                a = yield inner(3)
                b = yield inner(4)
                log.append("outer-done")
                return a + b

            return outer()

        obs = assert_identical(build)
        assert obs["results"] == [14]
        assert obs["log"] == [("inner", 3), ("inner", 4), "outer-done"]


class TestExceptionSemantics:
    def test_try_finally_on_error_ordering(self):
        def build(impl, log):
            @impl
            def prog():
                try:
                    try:
                        yield sys_yield()
                        log.append("body")
                        raise ValueError("boom")
                    finally:
                        log.append("inner-finally")
                except ValueError:
                    log.append("caught")
                finally:
                    log.append("outer-finally")
                return "ok"

            return prog()

        obs = assert_identical(build)
        assert obs["results"] == ["ok"]
        assert obs["log"] == ["body", "inner-finally", "caught", "outer-finally"]

    def test_uncaught_exception_escapes_identically(self):
        def build(impl, log):
            @impl
            def prog():
                yield sys_yield()
                raise KeyError("gone")

            return prog()

        obs = assert_identical(build)
        assert obs["errors"] == ["KeyError"]
        assert obs["uncaught"] == ["KeyError"]

    def test_monadic_throw_lands_in_generator_try(self):
        def build(impl, log):
            @impl
            def prog():
                try:
                    yield sys_throw(RuntimeError("monadic"))
                except RuntimeError as exc:
                    log.append(str(exc))
                    return "recovered"

            return prog()

        obs = assert_identical(build)
        assert obs["results"] == ["recovered"]
        assert obs["log"] == ["monadic"]

    def test_nbio_exception_surfaces_in_generator(self):
        def build(impl, log):
            def explode():
                raise OSError("io")

            @impl
            def prog():
                try:
                    yield sys_nbio(explode)
                except OSError:
                    log.append("caught-io")
                return "done"

            return prog()

        obs = assert_identical(build)
        assert obs["results"] == ["done"]

    def test_rethrow_after_catch_unwinds_outward(self):
        def build(impl, log):
            @impl
            def inner():
                try:
                    yield sys_yield()
                    raise ValueError("inner")
                except ValueError:
                    log.append("inner-caught")
                    raise KeyError("rethrown")

            @impl
            def outer():
                try:
                    yield inner()
                except KeyError:
                    log.append("outer-caught")
                return "ok"

            return outer()

        obs = assert_identical(build)
        assert obs["results"] == ["ok"]
        assert obs["log"] == ["inner-caught", "outer-caught"]

    def test_sys_catch_around_do_and_do_around_sys_catch(self):
        def build(impl, log):
            @impl
            def thrower():
                yield sys_yield()
                raise ValueError("from-do")

            def handler(exc):
                log.append(("handled", type(exc).__name__))
                return pure("handler-value")

            @impl
            def catcher():
                # @do try/except around a sys_catch region whose body is a
                # @do thread: both interop directions in one program.
                value = yield sys_catch(thrower(), handler)
                log.append(("after-catch", value))
                try:
                    yield sys_catch(sys_throw(KeyError("k")), lambda e: sys_throw(e))
                except KeyError:
                    log.append("do-caught-sys-rethrow")
                return value

            return catcher()

        obs = assert_identical(build)
        assert obs["results"] == ["handler-value"]
        assert obs["log"] == [
            ("handled", "ValueError"),
            ("after-catch", "handler-value"),
            "do-caught-sys-rethrow",
        ]


class TestKillSemantics:
    def _build_killable(self, impl, log):
        @impl
        def victim():
            try:
                while True:
                    yield sys_yield()
                    log.append("tick")
            finally:
                log.append("finalizer")

        return victim()

    def test_kill_mid_batch_runs_finalizers(self):
        observations = []
        for impl in (do, do_slow):
            log: list = []
            sched = Scheduler(batch_limit=1, uncaught="store")
            tcb = sched.spawn(self._build_killable(impl, log))
            for _ in range(4):
                sched.step()
            sched.kill(tcb)
            sched.run()
            observations.append(
                {
                    "log": log,
                    "state": tcb.state,
                    "error": type(tcb.error).__name__,
                    "syscalls": tcb.syscall_count,
                }
            )
        fast, slow = observations
        assert fast == slow
        assert fast["error"] == "ThreadKilled"
        assert fast["log"][-1] == "finalizer"

    def test_kill_parked_thread_delivered_on_resume(self):
        for impl in (do, do_slow):
            log: list = []
            parked: list = []
            sched = Scheduler(uncaught="store")
            from repro.core.trace import SysSleep

            sched.register_syscall(
                SysSleep,
                lambda s, tcb, node: (parked.append((tcb, node.cont)), None)[1],
            )

            @impl
            def sleeper():
                try:
                    yield sys_sleep(60.0)
                finally:
                    log.append("cleanup")

            tcb = sched.spawn(sleeper())
            sched.run()
            assert parked, impl.__name__
            sched.kill(tcb)
            parked_tcb, cont = parked[0]
            sched.resume_value(parked_tcb, cont, None)
            sched.run()
            assert tcb.state == "failed", impl.__name__
            assert isinstance(tcb.error, ThreadKilled), impl.__name__
            assert log == ["cleanup"], impl.__name__


class TestPureYieldBounces:
    def test_long_pure_chain_constant_stack(self):
        # 100k consecutive pure yields: the trampoline must flatten both
        # paths (a recursive driver would blow the stack), and counters
        # must agree exactly.
        def build(impl, log):
            @impl
            def prog():
                total = 0
                for i in range(100_000):
                    total += yield pure(1)
                return total

            return prog()

        obs = assert_identical(build)
        assert obs["results"] == [100_000]

    def test_pure_bounce_counts_no_nodes(self):
        # A pure yield never reaches the scheduler: node counts stay at
        # region entry + exit on both paths.
        def build(impl, log):
            @impl
            def prog():
                a = yield pure(1)
                b = yield pure(2)
                return a + b

            return prog()

        obs = assert_identical(build)
        # SysGen/SysCatch entry + SysEndCatch + SysRet = 3 nodes.
        assert obs["total_syscalls"] == 3


class TestAbandonedThreads:
    def test_abandoned_generator_collects_quietly(self):
        # A thread parked forever whose scheduler is dropped: the live
        # generator is garbage collected; a yield-inside-finally cleanup
        # cannot run (matches GHC's collected threads).  Record the raw
        # unraisable events the collection produces and require that every
        # one is exactly the shape the production filter suppresses — i.e.
        # nothing escapes as noise, on either path.
        from repro.core import do_notation

        for impl in (do, do_slow):

            @impl
            def waiter():
                try:
                    yield sys_sleep(3600.0)
                finally:
                    yield sys_yield()  # illegal during GC finalization

            parked: list = []
            sched = Scheduler()
            from repro.core.trace import SysSleep

            sched.register_syscall(
                SysSleep,
                lambda s, tcb, node: (parked.append((tcb, node)), None)[1],
            )
            sched.spawn(waiter())
            sched.run()
            assert parked, impl.__name__
            gc.collect()  # flush unrelated garbage before recording
            raw: list = []
            prev_hook = sys.unraisablehook
            sys.unraisablehook = lambda args: raw.append(args)
            try:
                del sched, parked
                gc.collect()
            finally:
                sys.unraisablehook = prev_hook
            noise = [
                event
                for event in raw
                if not (
                    isinstance(event.exc_value, RuntimeError)
                    and event.exc_value.args
                    == ("generator ignored GeneratorExit",)
                    and do_notation._is_do_generator(event.object)
                )
            ]
            assert not noise, (impl.__name__, noise)


class TestCounterSemantics:
    def test_node_counts_match_per_thread_and_total(self):
        def build(impl, log):
            @impl
            def child(n):
                for _ in range(n):
                    yield sys_yield()
                return n

            @impl
            def parent():
                a = yield child(3)
                b = yield child(2)
                return a + b

            return [parent(), child(4)]

        obs = assert_identical(build)
        assert obs["results"] == [5, 4]

    def test_batch_limit_one_interleaving_matches(self):
        def build(impl, log):
            @impl
            def worker(tag, rounds):
                for i in range(rounds):
                    log.append((tag, i))
                    yield sys_yield()

            return [worker("a", 3), worker("b", 3)]

        obs = assert_identical(build, batch_limit=1)
        # Round-robin interleaving, preserved exactly by the fast path.
        assert obs["log"] == [
            ("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2),
        ]


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.sampled_from(["pure", "yield", "nbio", "raise_catch", "nested"]),
        min_size=0,
        max_size=12,
    )
)
def test_property_random_programs_identical(ops):
    """Random mixed programs observe no fast/slow divergence at all."""

    def build(impl, log):
        @impl
        def nested(x):
            yield sys_yield()
            return x + 1

        @impl
        def prog():
            acc = 0
            for index, op in enumerate(ops):
                if op == "pure":
                    acc += yield pure(index)
                elif op == "yield":
                    yield sys_yield()
                    log.append(("y", index))
                elif op == "nbio":
                    acc += yield sys_nbio(lambda index=index: index * 2)
                elif op == "raise_catch":
                    try:
                        raise ValueError(index)
                    except ValueError:
                        log.append(("c", index))
                elif op == "nested":
                    acc += yield nested(index)
            return acc

        return prog()

    fast, slow = run_differential(build)
    assert fast == slow
