"""Tests for the generator-based do-notation."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.do_notation import DoProtocolError, do
from repro.core.monad import pure
from repro.core.scheduler import Scheduler, run_threads
from repro.core.syscalls import sys_catch, sys_nbio, sys_throw, sys_yield


def run_one(comp):
    """Run a single computation; return its TCB."""
    return run_threads([comp])[0]


class TestBasics:
    def test_return_value(self):
        @do
        def compute():
            x = yield pure(20)
            y = yield pure(22)
            return x + y

        assert run_one(compute()).result == 42

    def test_no_yield_needed(self):
        @do
        def immediate():
            return "done"
            yield  # pragma: no cover - makes this a generator

        assert run_one(immediate()).result == "done"

    def test_arguments_passed(self):
        @do
        def add(a, b, scale=1):
            total = yield pure((a + b) * scale)
            return total

        assert run_one(add(2, 3, scale=10)).result == 50

    def test_calls_are_lazy(self):
        effects = []

        @do
        def worker():
            effects.append("body ran")
            yield pure(None)

        comp = worker()
        assert effects == []  # nothing runs until scheduled
        run_one(comp)
        assert effects == ["body ran"]

    def test_nested_do_calls(self):
        @do
        def inner(x):
            doubled = yield pure(x * 2)
            return doubled

        @do
        def outer():
            a = yield inner(5)
            b = yield inner(a)
            return b

        assert run_one(outer()).result == 20

    def test_loop_with_yields(self):
        @do
        def summer(n):
            total = 0
            for i in range(n):
                total += yield pure(i)
            return total

        assert run_one(summer(100)).result == sum(range(100))

    def test_deep_pure_loop_constant_stack(self):
        # 100k consecutive synchronous yields must not blow the stack:
        # this is what the bounce trampoline is for.
        @do
        def deep():
            total = 0
            for i in range(100_000):
                total += yield pure(1)
            return total

        assert run_one(deep()).result == 100_000

    def test_long_yield_loop(self):
        # sys_yield suspends each iteration; exercises scheduler requeueing.
        @do
        def yielder(n):
            count = 0
            for _ in range(n):
                yield sys_yield()
                count += 1
            return count

        assert run_one(yielder(5_000)).result == 5_000

    def test_yield_non_monadic_value_raises_protocol_error(self):
        @do
        def bad():
            yield 42

        tcb = run_threads([bad()], uncaught="store")[0]
        assert isinstance(tcb.error, DoProtocolError)


class TestExceptions:
    def test_native_try_except_catches_monadic_throw(self):
        @do
        def worker():
            try:
                yield sys_throw(ValueError("boom"))
            except ValueError as exc:
                return f"caught {exc}"

        assert run_one(worker()).result == "caught boom"

    def test_native_raise_caught_by_sys_catch(self):
        @do
        def raiser():
            yield pure(None)
            raise KeyError("k")

        @do
        def catcher():
            def handler(exc):
                return pure(("handled", type(exc).__name__))

            result = yield sys_catch(raiser(), handler)
            return result

        assert run_one(catcher()).result == ("handled", "KeyError")

    def test_try_finally_runs_on_error(self):
        log = []

        @do
        def worker():
            try:
                yield sys_throw(RuntimeError("x"))
            finally:
                log.append("finally")

        tcb = run_threads([worker()], uncaught="store")[0]
        assert log == ["finally"]
        assert isinstance(tcb.error, RuntimeError)

    def test_exception_in_nbio_action_surfaces_in_generator(self):
        @do
        def worker():
            try:
                yield sys_nbio(lambda: 1 / 0)
            except ZeroDivisionError:
                return "saved"

        assert run_one(worker()).result == "saved"

    def test_uncaught_propagates_out_of_nested_do(self):
        @do
        def inner():
            yield pure(None)
            raise OSError("disk")

        @do
        def outer():
            try:
                yield inner()
            except OSError as exc:
                return f"outer saw {exc}"

        assert run_one(outer()).result == "outer saw disk"

    def test_rethrow_after_catch(self):
        @do
        def worker():
            try:
                yield sys_throw(ValueError("first"))
            except ValueError:
                raise KeyError("second")

        tcb = run_threads([worker()], uncaught="store")[0]
        assert isinstance(tcb.error, KeyError)

    def test_multiple_catches_in_one_generator(self):
        @do
        def worker():
            caught = []
            for i in range(3):
                try:
                    yield sys_throw(ValueError(str(i)))
                except ValueError as exc:
                    caught.append(str(exc))
            return caught

        assert run_one(worker()).result == ["0", "1", "2"]

    def test_generator_exception_after_success_path(self):
        @do
        def worker():
            value = yield pure(10)
            if value == 10:
                raise LookupError("gotcha")
            return value

        tcb = run_threads([worker()], uncaught="store")[0]
        assert isinstance(tcb.error, LookupError)


@given(st.lists(st.integers(0, 3), min_size=0, max_size=30))
def test_random_mix_of_pure_and_suspending_yields(pattern):
    """Any interleaving of pure, nbio, and yield steps computes correctly."""

    @do
    def worker():
        total = 0
        for kind in pattern:
            if kind == 0:
                total += yield pure(1)
            elif kind == 1:
                total += yield sys_nbio(lambda: 1)
            elif kind == 2:
                yield sys_yield()
            else:
                try:
                    yield sys_throw(ValueError())
                except ValueError:
                    total += 1
        return total

    expected = sum(1 for k in pattern if k != 2)
    assert run_one(worker()).result == expected
