"""Unit and property tests for the CPS monad and its combinators."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.monad import (
    M,
    NotPureError,
    ap,
    bind,
    build_trace,
    fmap,
    foldM,
    for_each,
    join_m,
    mapM,
    mapM_,
    pure,
    replicateM,
    replicateM_,
    run_pure,
    sequence_,
    sequence_m,
    then,
    unless,
    when,
)
from repro.core.syscalls import sys_nbio, sys_yield
from repro.core.trace import SysRet, SysYield


class TestPure:
    def test_pure_returns_value(self):
        assert run_pure(pure(42)) == 42

    def test_pure_none_default(self):
        assert run_pure(pure()) is None

    def test_pure_preserves_identity(self):
        marker = object()
        assert run_pure(pure(marker)) is marker


class TestBind:
    def test_bind_chains_results(self):
        comp = pure(3).bind(lambda x: pure(x * 2))
        assert run_pure(comp) == 6

    def test_bind_free_function(self):
        assert run_pure(bind(pure(3), lambda x: pure(x + 1))) == 4

    def test_then_discards_first(self):
        assert run_pure(pure(1).then(pure(2))) == 2

    def test_then_free_function(self):
        assert run_pure(then(pure("a"), pure("b"))) == "b"

    def test_rshift_operator(self):
        assert run_pure(pure(1) >> pure(2) >> pure(3)) == 3

    def test_fmap(self):
        assert run_pure(pure(10).fmap(lambda x: x + 5)) == 15

    def test_fmap_free_function(self):
        assert run_pure(fmap(str, pure(7))) == "7"

    def test_ap(self):
        assert run_pure(ap(pure(lambda x: x * 3), pure(4))) == 12

    def test_join_m(self):
        assert run_pure(join_m(pure(pure("inner")))) == "inner"

    def test_long_bind_chain(self):
        comp = pure(0)
        for _ in range(200):
            comp = comp.bind(lambda x: pure(x + 1))
        assert run_pure(comp) == 200


class TestSequencing:
    def test_sequence_m_collects_in_order(self):
        assert run_pure(sequence_m([pure(1), pure(2), pure(3)])) == [1, 2, 3]

    def test_sequence_m_empty(self):
        assert run_pure(sequence_m([])) == []

    def test_sequence_discards(self):
        log = []
        actions = [sys_nbio(lambda i=i: log.append(i)) for i in range(3)]
        from repro.core.scheduler import run_threads

        run_threads([sequence_(actions)])
        assert log == [0, 1, 2]

    def test_mapM(self):
        assert run_pure(mapM(lambda x: pure(x * x), [1, 2, 3])) == [1, 4, 9]

    def test_mapM_(self):
        assert run_pure(mapM_(lambda x: pure(x), [1, 2])) is None

    def test_for_each_order(self):
        seen = []
        from repro.core.scheduler import run_threads

        run_threads(
            [for_each("abc", lambda ch: sys_nbio(lambda ch=ch: seen.append(ch)))]
        )
        assert seen == ["a", "b", "c"]

    def test_replicateM(self):
        assert run_pure(replicateM(4, pure("x"))) == ["x"] * 4

    def test_replicateM_(self):
        assert run_pure(replicateM_(4, pure("x"))) is None

    def test_when_true_runs(self):
        assert run_pure(when(True, pure(1)).then(pure("done"))) == "done"

    def test_unless(self):
        assert run_pure(unless(False, pure(9))) == 9
        assert run_pure(unless(True, pure(9))) is None

    def test_foldM(self):
        comp = foldM(lambda acc, x: pure(acc + x), 0, [1, 2, 3, 4])
        assert run_pure(comp) == 10

    def test_foldM_empty(self):
        assert run_pure(foldM(lambda acc, x: pure(acc + x), 7, [])) == 7

    def test_sequence_m_mixed_sync_async(self):
        # Suspending actions interleaved with pure glue must still collect
        # in order (exercises both arms of the append-side accumulator).
        from repro.core.scheduler import run_threads

        actions = []
        for i in range(6):
            if i % 2:
                actions.append(sys_yield().then(pure(i)))
            else:
                actions.append(pure(i))
        [tcb] = run_threads([sequence_m(actions)])
        assert tcb.result == [0, 1, 2, 3, 4, 5]

    def test_sequence_m_long_pure_chain_constant_stack(self):
        # The bounce trampoline must flatten synchronous completions; a
        # recursive driver would exhaust the Python stack long before 50k.
        n = 50_000
        assert run_pure(sequence_m([pure(i) for i in range(n)])) == list(range(n))

    def test_sequence_m_scales_linearly(self):
        # The accumulator appends (O(n) total); the old [x] + xs cons made
        # this O(n²) — at these sizes roughly a 16x-per-element blowup.
        import time

        def measure(n: int) -> float:
            comp = sequence_m([pure(i) for i in range(n)])
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                run_pure(comp)
                best = min(best, time.perf_counter() - t0)
            return best

        small, big = measure(1_000), measure(16_000)
        # Linear scaling predicts ~16x; quadratic predicts ~256x.  The
        # generous bound keeps slow shared CI machines from flaking.
        assert big < small * 60, (
            f"sequence_m scaled superlinearly: {small:.4f}s @1k vs "
            f"{big:.4f}s @16k"
        )


class TestBuildTrace:
    def test_build_trace_pure_is_ret(self):
        trace = build_trace(pure(5))
        assert isinstance(trace, SysRet)
        assert trace.value == 5

    def test_build_trace_custom_final(self):
        seen = []

        def final(value):
            seen.append(value)
            return SysRet(value)

        build_trace(pure("v"), final)
        assert seen == ["v"]

    def test_yield_produces_yield_node(self):
        trace = build_trace(sys_yield())
        assert isinstance(trace, SysYield)
        # Forcing the continuation finishes the thread.
        nxt = trace.cont()
        assert isinstance(nxt, SysRet)

    def test_run_pure_rejects_suspension(self):
        with pytest.raises(NotPureError):
            run_pure(sys_yield())

    def test_computation_is_lazy(self):
        effects = []
        comp = sys_nbio(lambda: effects.append("ran"))
        assert effects == []
        trace = build_trace(comp)
        assert effects == []  # constructing the node runs nothing
        trace.run()
        assert effects == ["ran"]


# ----------------------------------------------------------------------
# Monad laws, observed through effect logs (the only observable besides
# the result): two computations are equivalent iff, run on a scheduler,
# they produce the same result and the same effect sequence.
# ----------------------------------------------------------------------
def effectful(tag, log):
    """An effectful computation that logs ``tag`` and returns it."""
    return sys_nbio(lambda: (log.append(tag), tag)[1])


values = st.integers(-100, 100)


@given(x=values)
def test_left_identity(x):
    # return x >>= f  ==  f x
    log1, log2 = [], []
    f = lambda v, log: effectful(v * 2, log)
    from repro.core.scheduler import run_threads

    lhs = run_threads([pure(x).bind(lambda v: f(v, log1))])[0].result
    rhs = run_threads([f(x, log2)])[0].result
    assert lhs == rhs
    assert log1 == log2


@given(x=values)
def test_right_identity(x):
    # m >>= return  ==  m
    log1, log2 = [], []
    from repro.core.scheduler import run_threads

    lhs = run_threads([effectful(x, log1).bind(pure)])[0].result
    rhs = run_threads([effectful(x, log2)])[0].result
    assert lhs == rhs
    assert log1 == log2


@given(x=values, a=values, b=values)
def test_associativity(x, a, b):
    # (m >>= f) >>= g  ==  m >>= (\v -> f v >>= g)
    def make(log):
        m = effectful(x, log)
        f = lambda v: effectful(v + a, log)
        g = lambda v: effectful(v * b, log)
        return m, f, g

    from repro.core.scheduler import run_threads

    log1: list = []
    m, f, g = make(log1)
    lhs = run_threads([m.bind(f).bind(g)])[0].result

    log2: list = []
    m, f, g = make(log2)
    rhs = run_threads([m.bind(lambda v: f(v).bind(g))])[0].result

    assert lhs == rhs
    assert log1 == log2


@given(xs=st.lists(values, max_size=20))
def test_sequence_preserves_order_and_effects(xs):
    log: list = []
    from repro.core.scheduler import run_threads

    comp = sequence_m([effectful(x, log) for x in xs])
    result = run_threads([comp])[0].result
    assert result == xs
    assert log == xs


@given(n=st.integers(0, 50), x=values)
def test_replicate_counts(n, x):
    log: list = []
    from repro.core.scheduler import run_threads

    run_threads([replicateM_(n, effectful(x, log))])
    assert log == [x] * n
