"""Scheduler semantics: forking, yielding, batching, exceptions, join."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.do_notation import do
from repro.core.exceptions import (
    DeadlockError,
    ThreadKilled,
    UncaughtThreadError,
    UnsupportedSyscallError,
)
from repro.core.monad import pure, replicateM_
from repro.core.scheduler import Scheduler, run_threads
from repro.core.syscalls import (
    sys_catch,
    sys_epoll_wait,
    sys_fork,
    sys_get_tid,
    sys_nbio,
    sys_ret,
    sys_special,
    sys_throw,
    sys_yield,
)
from repro.core.thread import ThreadGroup, spawn


class TestForkAndRun:
    def test_fork_runs_child(self):
        log = []

        @do
        def child():
            yield sys_nbio(lambda: log.append("child"))

        @do
        def parent():
            yield sys_fork(child())
            yield sys_nbio(lambda: log.append("parent"))

        sched = Scheduler()
        sched.spawn(parent())
        sched.run()
        assert sorted(log) == ["child", "parent"]

    def test_fork_interleaving_matches_figure4(self):
        """The server/client example from the paper's Figure 4."""
        log = []

        @do
        def client(i):
            yield sys_nbio(lambda: log.append(f"sys_call_2:{i}"))

        @do
        def server(remaining):
            yield sys_nbio(lambda: log.append("sys_call_1"))
            if remaining > 0:
                yield sys_fork(client(remaining))
                yield server(remaining - 1)

        sched = Scheduler(batch_limit=1)
        sched.spawn(server(3))
        sched.run()
        assert log.count("sys_call_1") == 4
        assert sorted(e for e in log if e.startswith("sys_call_2")) == [
            "sys_call_2:1",
            "sys_call_2:2",
            "sys_call_2:3",
        ]

    def test_many_threads_all_run(self):
        counter = {"n": 0}

        @do
        def worker():
            yield sys_nbio(lambda: counter.__setitem__("n", counter["n"] + 1))

        sched = Scheduler()
        for _ in range(1000):
            sched.spawn(worker())
        sched.run()
        assert counter["n"] == 1000

    def test_sys_ret_terminates_early(self):
        log = []

        @do
        def worker():
            yield sys_nbio(lambda: log.append("before"))
            yield sys_ret("early")
            yield sys_nbio(lambda: log.append("after"))  # unreachable

        tcb = run_threads([worker()])[0]
        assert log == ["before"]
        assert tcb.state == "done"

    def test_fork_lazy_child_factory(self):
        built = []

        def factory():
            built.append(True)
            return pure(None)

        @do
        def parent():
            yield sys_fork(factory)
            assert built == []  # child not built until scheduled

        run_threads([parent()])
        assert built == [True]

    def test_tids_unique_and_get_tid(self):
        tids = []

        @do
        def worker():
            tid = yield sys_get_tid()
            tids.append(tid)

        sched = Scheduler()
        for _ in range(10):
            sched.spawn(worker())
        sched.run()
        assert len(set(tids)) == 10


class TestYieldAndFairness:
    def test_yield_round_robin(self):
        log = []

        @do
        def worker(tag, n):
            for _ in range(n):
                yield sys_nbio(lambda t=tag: log.append(t))
                yield sys_yield()

        sched = Scheduler(batch_limit=1)
        sched.spawn(worker("a", 3))
        sched.spawn(worker("b", 3))
        sched.run()
        # With batch 1 and round-robin, a and b strictly alternate.
        assert log == ["a", "b", "a", "b", "a", "b"]

    def test_batching_keeps_thread_running(self):
        log = []

        @do
        def worker(tag, n):
            for _ in range(n):
                yield sys_nbio(lambda t=tag: log.append(t))

        sched = Scheduler(batch_limit=1000)
        sched.spawn(worker("a", 5))
        sched.spawn(worker("b", 5))
        sched.run()
        # Large batch: each thread's nbio calls run contiguously.
        assert log == ["a"] * 5 + ["b"] * 5

    def test_batch_exhaustion_switches(self):
        log = []

        @do
        def worker(tag):
            for _ in range(4):
                yield sys_nbio(lambda t=tag: log.append(t))

        sched = Scheduler(batch_limit=2)
        sched.spawn(worker("a"))
        sched.spawn(worker("b"))
        sched.run()
        assert log.count("a") == 4 and log.count("b") == 4
        # Neither thread ran all 4 steps contiguously.
        assert log != ["a"] * 4 + ["b"] * 4

    def test_batch_limit_validation(self):
        with pytest.raises(ValueError):
            Scheduler(batch_limit=0)

    def test_stats_counters(self):
        @do
        def worker():
            yield sys_yield()
            yield sys_yield()

        sched = Scheduler()
        sched.spawn(worker())
        sched.run()
        stats = sched.stats()
        assert stats["live_threads"] == 0
        assert stats["total_syscalls"] >= 3
        assert stats["total_switches"] >= 3  # initial + 2 yields


class TestUncaughtPolicy:
    def test_raise_policy(self):
        @do
        def bad():
            yield pure(None)
            raise ValueError("x")

        sched = Scheduler(uncaught="raise")
        sched.spawn(bad())
        with pytest.raises(UncaughtThreadError) as info:
            sched.run()
        assert isinstance(info.value.exc, ValueError)

    def test_store_policy(self):
        @do
        def bad():
            yield pure(None)
            raise ValueError("x")

        sched = Scheduler(uncaught="store")
        tcb = sched.spawn(bad())
        sched.run()
        assert len(sched.uncaught_errors) == 1
        assert sched.uncaught_errors[0][0] is tcb
        assert tcb.state == "failed"

    def test_callable_policy(self):
        seen = []

        @do
        def bad():
            yield pure(None)
            raise ValueError("x")

        sched = Scheduler(uncaught=lambda tcb, exc: seen.append((tcb.tid, exc)))
        sched.spawn(bad())
        sched.run()
        assert len(seen) == 1

    def test_unsupported_syscall_is_thread_error(self):
        @do
        def worker():
            try:
                yield sys_epoll_wait(1, 1)  # no backend on bare scheduler
            except UnsupportedSyscallError:
                return "refused"

        assert run_threads([worker()])[0].result == "refused"

    def test_unknown_special_is_thread_error(self):
        @do
        def worker():
            try:
                yield sys_special("no-such-extension")
            except UnsupportedSyscallError:
                return "refused"

        assert run_threads([worker()])[0].result == "refused"


class TestJoin:
    def test_join_returns_result(self):
        @do
        def child():
            yield sys_yield()
            return 99

        @do
        def parent():
            handle = yield spawn(child())
            value = yield handle.join()
            return value

        assert run_threads([parent()])[0].result == 99

    def test_join_after_completion(self):
        @do
        def child():
            return 7
            yield  # pragma: no cover

        @do
        def parent():
            handle = yield spawn(child())
            # Let the child finish first.
            for _ in range(5):
                yield sys_yield()
            assert handle.finished
            value = yield handle.join()
            return value

        assert run_threads([parent()])[0].result == 7

    def test_join_rethrows_child_error(self):
        @do
        def child():
            yield pure(None)
            raise RuntimeError("child died")

        @do
        def parent():
            handle = yield spawn(child())
            try:
                yield handle.join()
            except RuntimeError as exc:
                return f"saw: {exc}"

        assert run_threads([parent()])[0].result == "saw: child died"

    def test_thread_group(self):
        @do
        def worker(i):
            yield sys_yield()
            return i * i

        @do
        def parent():
            group = ThreadGroup()
            for i in range(5):
                yield group.spawn(worker(i))
            results = yield group.join()
            return results

        assert run_threads([parent()])[0].result == [0, 1, 4, 9, 16]

    def test_multiple_joiners(self):
        results = []

        @do
        def child():
            yield sys_yield()
            yield sys_yield()
            return "value"

        @do
        def joiner(handle):
            value = yield handle.join()
            yield sys_nbio(lambda: results.append(value))

        @do
        def parent():
            handle = yield spawn(child())
            yield sys_fork(joiner(handle))
            yield sys_fork(joiner(handle))

        sched = Scheduler()
        sched.spawn(parent())
        sched.run()
        assert results == ["value", "value"]


class TestKill:
    def test_kill_ready_thread(self):
        log = []

        @do
        def victim():
            for _ in range(100):
                yield sys_yield()
                log.append("tick")

        sched = Scheduler(uncaught="store")
        tcb = sched.spawn(victim())
        sched.step()  # let it start
        sched.kill(tcb)
        sched.run()
        assert tcb.state == "failed"
        assert isinstance(tcb.error, ThreadKilled)
        assert len(log) < 100

    def test_kill_finished_thread_is_noop(self):
        @do
        def quick():
            return 1
            yield  # pragma: no cover

        sched = Scheduler()
        tcb = sched.spawn(quick())
        sched.run()
        sched.kill(tcb)
        assert tcb.state == "done"

    def test_killed_thread_runs_finalizers(self):
        log = []

        @do
        def victim():
            try:
                for _ in range(100):
                    yield sys_yield()
            finally:
                log.append("cleanup")

        sched = Scheduler(uncaught="store")
        tcb = sched.spawn(victim())
        sched.step()
        sched.kill(tcb)
        sched.run()
        assert log == ["cleanup"]


class TestDeadlockDetection:
    def test_run_all_reports_deadlock(self):
        from repro.core.sync import MVar

        box = MVar()

        @do
        def waiter():
            yield box.take()  # never filled

        sched = Scheduler()
        sched.spawn(waiter())
        with pytest.raises(DeadlockError):
            sched.run_all()


class TestExceptionsViaCombinators:
    """sys_catch/sys_throw used directly (no generator sugar)."""

    def test_catch_returns_body_value(self):
        comp = sys_catch(pure(41).fmap(lambda x: x + 1), lambda exc: pure(-1))
        assert run_threads([comp])[0].result == 42

    def test_catch_handles_throw(self):
        comp = sys_catch(
            sys_throw(ValueError("v")).then(pure("unreached")),
            lambda exc: pure(f"handled {type(exc).__name__}"),
        )
        assert run_threads([comp])[0].result == "handled ValueError"

    def test_nested_catch_inner_wins(self):
        inner = sys_catch(sys_throw(KeyError("k")), lambda exc: pure("inner"))
        outer = sys_catch(inner, lambda exc: pure("outer"))
        assert run_threads([outer])[0].result == "inner"

    def test_handler_rethrow_reaches_outer(self):
        inner = sys_catch(
            sys_throw(KeyError("k")), lambda exc: sys_throw(ValueError("v"))
        )
        outer = sys_catch(inner, lambda exc: pure(type(exc).__name__))
        assert run_threads([outer])[0].result == "ValueError"

    def test_throw_skips_rest_of_body(self):
        log = []
        body = (
            sys_nbio(lambda: log.append("a"))
            .then(sys_throw(RuntimeError()))
            .then(sys_nbio(lambda: log.append("b")))
        )
        comp = sys_catch(body, lambda exc: pure(None))
        run_threads([comp])
        assert log == ["a"]

    def test_sys_finally_on_success(self):
        log = []
        from repro.core.syscalls import sys_finally

        comp = sys_finally(pure("ok"), sys_nbio(lambda: log.append("fin")))
        assert run_threads([comp])[0].result == "ok"
        assert log == ["fin"]

    def test_sys_finally_on_error(self):
        log = []
        from repro.core.syscalls import sys_finally

        comp = sys_catch(
            sys_finally(sys_throw(ValueError()), sys_nbio(lambda: log.append("fin"))),
            lambda exc: pure("caught"),
        )
        assert run_threads([comp])[0].result == "caught"
        assert log == ["fin"]


@settings(max_examples=30)
@given(
    st.lists(st.integers(1, 8), min_size=1, max_size=20),
    st.integers(1, 64),
)
def test_every_forked_thread_runs_exactly_once(counts, batch):
    """Property: forking a random tree of threads runs each exactly once."""
    log = []

    @do
    def leaf(ident):
        yield sys_nbio(lambda: log.append(ident))

    @do
    def root():
        ident = 0
        for fanout in counts:
            for _ in range(fanout):
                ident += 1
                yield sys_fork(leaf(ident))
            yield sys_yield()

    sched = Scheduler(batch_limit=batch)
    sched.spawn(root())
    sched.run()
    expected = list(range(1, sum(counts) + 1))
    assert sorted(log) == expected
