"""The work-stealing multi-worker scheduler (§4.4's proposed design)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.do_notation import do
from repro.core.exceptions import DeadlockError, UncaughtThreadError
from repro.core.monad import pure
from repro.core.smp import SmpScheduler
from repro.core.stm import TVar, modify_tvar
from repro.core.sync import Channel, Mutex, MVar
from repro.core.syscalls import sys_fork, sys_nbio, sys_yield
from repro.core.thread import spawn


class TestBasicExecution:
    def test_single_worker_equals_scheduler(self):
        smp = SmpScheduler(workers=1)

        @do
        def worker():
            value = yield pure(21)
            return value * 2

        tcb = smp.spawn(worker())
        smp.run()
        assert tcb.result == 42

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            SmpScheduler(workers=0)

    def test_all_threads_complete_across_workers(self):
        smp = SmpScheduler(workers=4)
        results = []

        @do
        def worker(i):
            yield sys_yield()
            yield sys_nbio(lambda i=i: results.append(i))

        for i in range(100):
            smp.spawn(worker(i))
        smp.run()
        assert sorted(results) == list(range(100))
        assert smp.live_threads == 0

    def test_tids_globally_unique(self):
        smp = SmpScheduler(workers=4)
        tcbs = [smp.spawn(pure(None)) for _ in range(40)]
        assert len({tcb.tid for tcb in tcbs}) == 40

    def test_round_robin_placement(self):
        smp = SmpScheduler(workers=4)
        for _ in range(8):
            smp.spawn(pure(None))
        assert [len(w.ready) for w in smp.workers] == [2, 2, 2, 2]

    def test_pinned_placement(self):
        smp = SmpScheduler(workers=4)
        for _ in range(5):
            smp.spawn(pure(None), worker=2)
        assert len(smp.workers[2].ready) == 5

    def test_forked_children_stay_local(self):
        smp = SmpScheduler(workers=2)

        @do
        def child():
            yield pure(None)

        @do
        def parent():
            for _ in range(6):
                yield sys_fork(child())

        smp.spawn(parent(), worker=0)
        # One step of worker 0 runs the parent's whole batch: children
        # land on worker 0's queue (locality) until someone steals.
        smp.step()
        assert len(smp.workers[0].ready) >= 5

    def test_run_all_detects_deadlock(self):
        box = MVar()
        smp = SmpScheduler(workers=2)

        @do
        def stuck():
            yield box.take()

        smp.spawn(stuck())
        with pytest.raises(DeadlockError):
            smp.run_all()


class TestWorkStealing:
    def test_stealing_balances_imbalanced_load(self):
        smp = SmpScheduler(workers=4)

        @do
        def worker():
            for _ in range(20):
                yield sys_yield()

        # All work pinned to worker 0: the others must steal.
        for _ in range(40):
            smp.spawn(worker(), worker=0)
        smp.run()
        stats = smp.stats()
        assert stats["steals"] > 0
        assert stats["tasks_stolen"] > 0
        # Every worker ended up doing real work.
        assert all(batches > 0 for batches in stats["per_worker_batches"])

    def test_no_stealing_when_balanced_enough(self):
        smp = SmpScheduler(workers=2)
        smp.spawn(pure(None), worker=0)
        smp.spawn(pure(None), worker=1)
        smp.run()
        # Trivial threads: each worker consumes its own.
        assert smp.stats()["tasks_stolen"] <= 1

    def test_steal_takes_half_from_victim(self):
        smp = SmpScheduler(workers=2)
        for _ in range(10):
            smp.spawn(pure(None), worker=0)
        # Worker 1's turn comes second; force one global step for worker 0,
        # then worker 1 steals on its turn.
        smp.step()  # worker 0 runs one batch
        before = len(smp.workers[0].ready)
        smp.step()  # worker 1 steals half and runs
        assert smp.stats()["steals"] >= 1
        assert len(smp.workers[0].ready) < before


class TestSyncAcrossWorkers:
    def test_mutex_exclusion_across_workers(self):
        smp = SmpScheduler(workers=4, batch_limit=1)
        mutex = Mutex()
        state = {"value": 0}

        @do
        def worker():
            for _ in range(10):
                yield mutex.acquire()
                snapshot = state["value"]
                yield sys_yield()
                yield sys_nbio(
                    lambda s=snapshot: state.__setitem__("value", s + 1)
                )
                yield mutex.release()

        for _ in range(8):
            smp.spawn(worker())
        smp.run()
        assert state["value"] == 80

    def test_channel_across_workers(self):
        smp = SmpScheduler(workers=3)
        chan = Channel()
        got = []

        @do
        def producer():
            for i in range(50):
                yield chan.write(i)

        @do
        def consumer():
            for _ in range(25):
                value = yield chan.read()
                got.append(value)

        smp.spawn(producer(), worker=0)
        smp.spawn(consumer(), worker=1)
        smp.spawn(consumer(), worker=2)
        smp.run()
        assert sorted(got) == list(range(50))

    def test_stm_across_workers(self):
        smp = SmpScheduler(workers=4, batch_limit=1)
        tv = TVar(0)

        @do
        def worker():
            for _ in range(25):
                yield modify_tvar(tv, lambda x: x + 1)
                yield sys_yield()

        for _ in range(4):
            smp.spawn(worker())
        smp.run()
        assert tv.value == 100

    def test_join_across_workers(self):
        smp = SmpScheduler(workers=2)

        @do
        def child():
            yield sys_yield()
            return "done"

        @do
        def parent():
            handle = yield spawn(child())
            value = yield handle.join()
            return value

        tcb = smp.spawn(parent(), worker=0)
        smp.run()
        assert tcb.result == "done"


class TestErrors:
    def test_uncaught_raise_policy(self):
        smp = SmpScheduler(workers=2, uncaught="raise")

        @do
        def bad():
            yield pure(None)
            raise ValueError("boom")

        smp.spawn(bad())
        with pytest.raises(UncaughtThreadError):
            smp.run()

    def test_uncaught_store_policy_aggregates(self):
        smp = SmpScheduler(workers=3, uncaught="store")

        @do
        def bad(i):
            yield sys_yield()
            raise ValueError(str(i))

        for i in range(6):
            smp.spawn(bad(i))
        smp.run()
        assert len(smp.uncaught_errors) == 6


@settings(max_examples=20)
@given(
    workers=st.integers(1, 6),
    threads=st.integers(1, 40),
    steps=st.integers(1, 10),
    batch=st.integers(1, 16),
)
def test_smp_equals_sequential_semantics(workers, threads, steps, batch):
    """Property: for independent threads, worker count never changes the
    set of completed work — only its interleaving."""
    smp = SmpScheduler(workers=workers, batch_limit=batch)
    log = []

    @do
    def worker(ident):
        for step in range(steps):
            yield sys_yield()
        yield sys_nbio(lambda: log.append(ident))

    for ident in range(threads):
        smp.spawn(worker(ident))
    smp.run()
    assert sorted(log) == list(range(threads))
    assert smp.live_threads == 0
