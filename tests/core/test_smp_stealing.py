"""Work stealing in depth: victim selection, steal order and size,
round-robin determinism, deadlock detection, and the device-loop resume
surface the live cluster relies on."""

from __future__ import annotations

import pytest

from repro.core.do_notation import do
from repro.core.exceptions import DeadlockError
from repro.core.monad import pure
from repro.core.smp import SmpScheduler
from repro.core.sync import Channel, MVar
from repro.core.syscalls import sys_epoll_wait, sys_nbio, sys_yield
from repro.core.trace import SysEpollWait


class TestVictimSelection:
    def test_thief_picks_largest_queue(self):
        smp = SmpScheduler(workers=3)
        for _ in range(3):
            smp.spawn(pure(None), worker=1)
        for _ in range(9):
            smp.spawn(pure(None), worker=2)
        smp._steal_for(smp.workers[0])
        # Worker 2 held the most work, so it pays; worker 1 is untouched.
        assert len(smp.workers[1].ready) == 3
        assert len(smp.workers[2].ready) == 5
        assert len(smp.workers[0].ready) == 4
        assert smp.steals == 1
        assert smp.tasks_stolen == 4

    def test_no_steal_when_all_queues_empty(self):
        smp = SmpScheduler(workers=3)
        smp._steal_for(smp.workers[0])
        assert smp.steals == 0
        assert all(not worker.ready for worker in smp.workers)

    def test_single_worker_never_steals(self):
        smp = SmpScheduler(workers=1)
        for _ in range(10):
            smp.spawn(pure(None))
        smp.run()
        assert smp.steals == 0


class TestStealSize:
    def test_steals_half_rounded_down(self):
        smp = SmpScheduler(workers=2)
        for _ in range(10):
            smp.spawn(pure(None), worker=0)
        smp._steal_for(smp.workers[1])
        assert len(smp.workers[1].ready) == 5
        assert len(smp.workers[0].ready) == 5

    def test_steals_at_least_one(self):
        smp = SmpScheduler(workers=2)
        smp.spawn(pure(None), worker=0)
        smp._steal_for(smp.workers[1])
        assert len(smp.workers[1].ready) == 1
        assert len(smp.workers[0].ready) == 0

    def test_steals_tail_of_victim_queue_in_order(self):
        """Half comes from the *back* (oldest-parked end the victim would
        reach last), preserving both sides' relative order."""
        smp = SmpScheduler(workers=2)
        tcbs = [smp.spawn(pure(None), worker=0, name=f"t{i}")
                for i in range(6)]
        smp._steal_for(smp.workers[1])
        victim_names = [tcb.name for tcb, _ in smp.workers[0].ready]
        thief_names = [tcb.name for tcb, _ in smp.workers[1].ready]
        assert victim_names == ["t0", "t1", "t2"]
        assert thief_names == ["t3", "t4", "t5"]
        assert [tcb.name for tcb in tcbs] == [f"t{i}" for i in range(6)]


class TestDeterminism:
    @staticmethod
    def _run_once(seed_threads: int, workers: int):
        smp = SmpScheduler(workers=workers, batch_limit=4)
        log: list[int] = []

        @do
        def thread(ident):
            for _ in range(ident % 3 + 1):
                yield sys_yield()
            yield sys_nbio(lambda: log.append(ident))

        # Imbalanced placement so stealing actually happens.
        for ident in range(seed_threads):
            smp.spawn(thread(ident), worker=0)
        smp.run()
        stats = smp.stats()
        return log, stats["steals"], stats["per_worker_batches"]

    def test_identical_runs_identical_schedules(self):
        first = self._run_once(24, 3)
        second = self._run_once(24, 3)
        assert first == second

    def test_round_robin_turn_order(self):
        """Workers take turns in index order: with every queue nonempty, N
        consecutive steps run workers 0, 1, ..., N-1."""
        smp = SmpScheduler(workers=3)
        for worker in range(3):
            smp.spawn(pure(None), worker=worker)
        order = []
        for worker in smp.workers:
            def make_step(worker=worker, real=worker.step):
                def step():
                    order.append(worker.index)
                    return real()
                return step
            worker.step = make_step()
        smp.step()
        smp.step()
        smp.step()
        assert order == [0, 1, 2]


class TestDeadlockDetection:
    def test_cross_worker_take_never_filled(self):
        smp = SmpScheduler(workers=3)
        box = MVar()

        @do
        def stuck():
            yield box.take()

        for worker in range(3):
            smp.spawn(stuck(), worker=worker)
        with pytest.raises(DeadlockError):
            smp.run_all()
        assert smp.live_threads == 3

    def test_cross_worker_cycle(self):
        """Two threads on different workers, each waiting on the other's
        channel: no worker has runnable work and run_all reports it."""
        smp = SmpScheduler(workers=2)
        left, right = Channel(), Channel()

        @do
        def one():
            value = yield left.read()
            yield right.write(value)

        @do
        def other():
            value = yield right.read()
            yield left.write(value)

        smp.spawn(one(), worker=0)
        smp.spawn(other(), worker=1)
        with pytest.raises(DeadlockError):
            smp.run_all()

    def test_no_false_deadlock_when_work_completes(self):
        smp = SmpScheduler(workers=2)
        box = MVar()

        @do
        def producer():
            yield box.put(41)

        @do
        def consumer():
            value = yield box.take()
            return value + 1

        tcb = smp.spawn(consumer(), worker=0)
        smp.spawn(producer(), worker=1)
        smp.run_all()
        assert tcb.result == 42


class TestDeviceResumeSurface:
    """The runtime-facing API (`ready`, `resume*`) the cluster's live
    shards use when wrapping an SmpScheduler."""

    def test_ready_counts_across_workers(self):
        smp = SmpScheduler(workers=3)
        assert smp.ready == 0
        for _ in range(5):
            smp.spawn(pure(None))
        assert smp.ready == 5
        smp.run()
        assert smp.ready == 0

    def test_resume_routes_to_home_worker(self):
        smp = SmpScheduler(workers=2)
        parked = {}

        def park_handler(sched, tcb, node):
            parked["tcb"], parked["cont"] = tcb, node.cont
            tcb.state = "blocked"
            return None

        # A device-style syscall parks the thread on worker 1; the runtime
        # then resumes it through the parent scheduler, as LiveRuntime does.
        results = []

        @do
        def thread():
            value = yield sys_epoll_wait("fake-fd", 1)
            results.append(value)

        smp.register_syscall(SysEpollWait, park_handler)
        smp.spawn(thread(), worker=1)
        smp.run()
        assert not results and parked  # parked on worker 1, nothing ready
        smp.resume_value(parked["tcb"], parked["cont"], "resumed")
        assert len(smp.workers[1].ready) == 1  # routed home, not elsewhere
        assert len(smp.workers[0].ready) == 0
        smp.run()
        assert results == ["resumed"]

    def test_home_map_cleared_on_finish(self):
        smp = SmpScheduler(workers=2)
        for _ in range(10):
            smp.spawn(pure(None))
        smp.run()
        assert smp._home == {}
