"""Software transactional memory: atomicity, retry, orElse, serializability."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.do_notation import do
from repro.core.scheduler import Scheduler, run_threads
from repro.core.stm import (
    StmError,
    TVar,
    atomically,
    modify_tvar,
    read_tvar,
    write_tvar,
)
from repro.core.syscalls import sys_fork, sys_yield


class TestBasicTransactions:
    def test_read_write(self):
        tv = TVar(1)

        @do
        def worker():
            old = yield atomically(lambda tx: tx.read(tv))
            yield write_tvar(tv, old + 10)
            new = yield read_tvar(tv)
            return (old, new)

        assert run_threads([worker()])[0].result == (1, 11)

    def test_modify(self):
        tv = TVar(5)

        @do
        def worker():
            new = yield modify_tvar(tv, lambda x: x * 2)
            return new

        assert run_threads([worker()])[0].result == 10
        assert tv.value == 10

    def test_transaction_sees_own_writes(self):
        tv = TVar(0)

        def tx_body(tx):
            tx.write(tv, 7)
            return tx.read(tv)

        @do
        def worker():
            seen = yield atomically(tx_body)
            return seen

        assert run_threads([worker()])[0].result == 7

    def test_multi_tvar_swap(self):
        a, b = TVar("left"), TVar("right")

        def swap(tx):
            x, y = tx.read(a), tx.read(b)
            tx.write(a, y)
            tx.write(b, x)

        @do
        def worker():
            yield atomically(swap)

        run_threads([worker()])
        assert (a.value, b.value) == ("right", "left")

    def test_exception_aborts_transaction(self):
        tv = TVar(1)

        def bad(tx):
            tx.write(tv, 999)
            raise RuntimeError("abort")

        @do
        def worker():
            try:
                yield atomically(bad)
            except RuntimeError:
                return "caught"

        assert run_threads([worker()])[0].result == "caught"
        assert tv.value == 1  # the write never committed

    def test_counter_increments_atomic(self):
        tv = TVar(0)

        @do
        def worker(n):
            for _ in range(n):
                yield modify_tvar(tv, lambda x: x + 1)
                yield sys_yield()

        sched = Scheduler(batch_limit=1)
        for _ in range(4):
            sched.spawn(worker(25))
        sched.run()
        assert tv.value == 100


class TestRetry:
    def test_retry_blocks_until_write(self):
        flag = TVar(False)
        log = []

        def wait_for_flag(tx):
            tx.check(tx.read(flag))
            return "woken"

        @do
        def waiter():
            result = yield atomically(wait_for_flag)
            log.append(result)

        @do
        def setter():
            log.append("setting")
            yield write_tvar(flag, True)

        sched = Scheduler(batch_limit=1)
        sched.spawn(waiter())
        sched.step()  # waiter parks on retry
        sched.spawn(setter())
        sched.run()
        assert log == ["setting", "woken"]

    def test_retry_with_empty_read_set_errors(self):
        @do
        def worker():
            try:
                yield atomically(lambda tx: tx.retry())
            except StmError:
                return "refused"

        assert run_threads([worker()])[0].result == "refused"

    def test_unrelated_write_does_not_wake(self):
        flag = TVar(False)
        other = TVar(0)
        woken = []

        @do
        def waiter():
            yield atomically(lambda tx: tx.check(tx.read(flag)))
            woken.append(True)

        @do
        def noise():
            yield write_tvar(other, 1)

        sched = Scheduler(batch_limit=1)
        tcb = sched.spawn(waiter())
        sched.step()
        sched.spawn(noise())
        sched.run()
        assert woken == []
        assert tcb.state == "blocked"
        # Now fire the real flag.
        sched.spawn(write_tvar(flag, True))
        sched.run()
        assert woken == [True]

    def test_bounded_buffer_with_stm(self):
        """A classic STM bounded buffer: retry when full/empty."""
        items = TVar(())
        capacity = 3
        produced, consumed = [], []

        def push(value):
            def tx_body(tx):
                buf = tx.read(items)
                tx.check(len(buf) < capacity)
                tx.write(items, buf + (value,))

            return atomically(tx_body)

        def pop(tx):
            buf = tx.read(items)
            tx.check(len(buf) > 0)
            tx.write(items, buf[1:])
            return buf[0]

        @do
        def producer(n):
            for i in range(n):
                yield push(i)
                produced.append(i)

        @do
        def consumer(n):
            for _ in range(n):
                value = yield atomically(pop)
                consumed.append(value)

        sched = Scheduler(batch_limit=1)
        sched.spawn(producer(10))
        sched.spawn(consumer(10))
        sched.run()
        assert consumed == list(range(10))


class TestOrElse:
    def test_first_branch_wins(self):
        tv = TVar(1)

        def tx_body(tx):
            return tx.or_else(
                lambda t: t.read(tv),
                lambda t: "fallback",
            )

        @do
        def worker():
            result = yield atomically(tx_body)
            return result

        assert run_threads([worker()])[0].result == 1

    def test_fallback_on_retry(self):
        def tx_body(tx):
            return tx.or_else(
                lambda t: t.retry(),
                lambda t: "fallback",
            )

        @do
        def worker():
            result = yield atomically(tx_body)
            return result

        assert run_threads([worker()])[0].result == "fallback"

    def test_first_branch_writes_rolled_back(self):
        tv = TVar("initial")

        def tx_body(tx):
            def first(t):
                t.write(tv, "from-first")
                t.retry()

            return tx.or_else(first, lambda t: t.read(tv))

        @do
        def worker():
            result = yield atomically(tx_body)
            return result

        assert run_threads([worker()])[0].result == "initial"
        assert tv.value == "initial"

    def test_both_retry_blocks_on_union(self):
        a, b = TVar(False), TVar(False)
        log = []

        def tx_body(tx):
            return tx.or_else(
                lambda t: (t.check(t.read(a)), "a")[1],
                lambda t: (t.check(t.read(b)), "b")[1],
            )

        @do
        def waiter():
            result = yield atomically(tx_body)
            log.append(result)

        sched = Scheduler(batch_limit=1)
        sched.spawn(waiter())
        sched.step()
        assert log == []
        # Waking via the *second* branch's TVar must also work.
        sched.spawn(write_tvar(b, True))
        sched.run()
        assert log == ["b"]


class TestTVar:
    def test_repr_and_name(self):
        tv = TVar(3, name="counter")
        assert "counter" in repr(tv)

    def test_auto_names_unique(self):
        assert TVar().name != TVar().name


@settings(max_examples=25)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 2), st.integers(1, 10)),
        min_size=1,
        max_size=20,
    ),
    batch=st.integers(1, 8),
)
def test_stm_account_transfers_conserve_total(ops, batch):
    """Property: random transfers between accounts preserve the total —
    transactions are atomic under any interleaving."""
    accounts = [TVar(100) for _ in range(3)]

    def transfer(src, dst, amount):
        def tx_body(tx):
            balance = tx.read(accounts[src])
            moved = min(balance, amount)
            tx.write(accounts[src], balance - moved)
            tx.write(accounts[dst], tx.read(accounts[dst]) + moved)

        return atomically(tx_body)

    @do
    def worker(src, amount):
        dst = (src + 1) % 3
        yield transfer(src, dst, amount)
        yield sys_yield()

    sched = Scheduler(batch_limit=batch)
    for src, amount in ops:
        sched.spawn(worker(src, amount))
    sched.run()
    assert sum(tv.value for tv in accounts) == 300
