"""Synchronization primitives: mutexes, MVars, channels, semaphores."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.do_notation import do
from repro.core.monad import pure
from repro.core.scheduler import Scheduler, run_threads
from repro.core.sync import (
    BoundedChannel,
    Channel,
    Mutex,
    MVar,
    RWLock,
    Semaphore,
    SyncError,
    WaitGroup,
)
from repro.core.syscalls import sys_nbio, sys_throw, sys_yield


class TestMutex:
    def test_acquire_release(self):
        mutex = Mutex()

        @do
        def worker():
            yield mutex.acquire()
            assert mutex.locked
            yield mutex.release()
            return "done"

        assert run_threads([worker()])[0].result == "done"
        assert not mutex.locked

    def test_mutual_exclusion(self):
        mutex = Mutex()
        active = {"count": 0, "max": 0}

        @do
        def worker():
            yield mutex.acquire()
            yield sys_nbio(lambda: active.__setitem__("count", active["count"] + 1))
            yield sys_nbio(
                lambda: active.__setitem__("max", max(active["max"], active["count"]))
            )
            yield sys_yield()  # try to let others interleave
            yield sys_yield()
            yield sys_nbio(lambda: active.__setitem__("count", active["count"] - 1))
            yield mutex.release()

        sched = Scheduler(batch_limit=1)
        for _ in range(10):
            sched.spawn(worker())
        sched.run()
        assert active["max"] == 1

    def test_fifo_handoff(self):
        mutex = Mutex()
        order = []

        @do
        def worker(i):
            yield mutex.acquire()
            order.append(i)
            yield mutex.release()

        @do
        def holder():
            yield mutex.acquire()
            for _ in range(5):
                yield sys_yield()
            yield mutex.release()

        sched = Scheduler(batch_limit=1)
        sched.spawn(holder())
        sched.step()  # holder takes the lock
        for i in range(5):
            sched.spawn(worker(i))
        sched.run()
        assert order == [0, 1, 2, 3, 4]

    def test_try_acquire(self):
        mutex = Mutex()

        @do
        def worker():
            first = yield mutex.try_acquire()
            second = yield mutex.try_acquire()
            yield mutex.release()
            third = yield mutex.try_acquire()
            yield mutex.release()
            return (first, second, third)

        assert run_threads([worker()])[0].result == (True, False, True)

    def test_release_unlocked_raises(self):
        mutex = Mutex()

        @do
        def worker():
            try:
                yield mutex.release()
            except SyncError:
                return "caught"

        assert run_threads([worker()])[0].result == "caught"

    def test_with_lock_releases_on_error(self):
        mutex = Mutex()

        @do
        def worker():
            try:
                yield mutex.with_lock(sys_throw(ValueError("inside")))
            except ValueError:
                pass
            return mutex.locked

        assert run_threads([worker()])[0].result is False


class TestMVar:
    def test_put_then_take(self):
        box = MVar()

        @do
        def worker():
            yield box.put(5)
            value = yield box.take()
            return value

        assert run_threads([worker()])[0].result == 5

    def test_initial_value(self):
        box = MVar(10)
        assert box.full

        @do
        def worker():
            value = yield box.take()
            return value

        assert run_threads([worker()])[0].result == 10
        assert not box.full

    def test_take_blocks_until_put(self):
        box = MVar()
        order = []

        @do
        def taker():
            order.append("taking")
            value = yield box.take()
            order.append(f"took {value}")

        @do
        def putter():
            order.append("putting")
            yield box.put("x")

        sched = Scheduler(batch_limit=1)
        sched.spawn(taker())
        sched.spawn(putter())
        sched.run()
        assert order == ["taking", "putting", "took x"]

    def test_put_blocks_while_full(self):
        box = MVar("first")
        order = []

        @do
        def putter():
            yield box.put("second")
            order.append("second put done")

        @do
        def taker():
            value = yield box.take()
            order.append(f"took {value}")

        sched = Scheduler(batch_limit=1)
        sched.spawn(putter())  # blocks: box full
        sched.run()
        assert order == []  # parked before completing the put
        sched.spawn(taker())
        sched.run()
        assert sorted(order) == ["second put done", "took first"]
        assert box.full  # putter's value landed

    def test_read_does_not_consume(self):
        box = MVar(3)

        @do
        def worker():
            a = yield box.read()
            b = yield box.read()
            c = yield box.take()
            return (a, b, c, box.full)

        assert run_threads([worker()])[0].result == (3, 3, 3, False)

    def test_read_wakes_with_put(self):
        box = MVar()
        seen = []

        @do
        def reader():
            value = yield box.read()
            seen.append(value)

        @do
        def putter():
            yield box.put(1)

        sched = Scheduler(batch_limit=1)
        sched.spawn(reader())
        sched.spawn(reader())
        sched.step()
        sched.step()
        sched.spawn(putter())
        sched.run()
        assert seen == [1, 1]
        assert box.full  # readers do not consume

    def test_try_take_try_put(self):
        box = MVar()

        @do
        def worker():
            empty = yield box.try_take()
            stored = yield box.try_put("v")
            refused = yield box.try_put("w")
            value = yield box.try_take()
            return (empty, stored, refused, value)

        assert run_threads([worker()])[0].result == (None, True, False, "v")

    def test_modify(self):
        box = MVar(10)

        @do
        def worker():
            new = yield box.modify(lambda x: x * 3)
            return new

        assert run_threads([worker()])[0].result == 30

    def test_producer_consumer_pipeline(self):
        box = MVar()
        received = []

        @do
        def producer(n):
            for i in range(n):
                yield box.put(i)
            yield box.put(None)  # sentinel

        @do
        def consumer():
            while True:
                item = yield box.take()
                if item is None:
                    return
                received.append(item)

        sched = Scheduler(batch_limit=1)
        sched.spawn(producer(20))
        sched.spawn(consumer())
        sched.run()
        assert received == list(range(20))


class TestChannel:
    def test_write_read(self):
        chan = Channel()

        @do
        def worker():
            yield chan.write("a")
            yield chan.write("b")
            x = yield chan.read()
            y = yield chan.read()
            return x + y

        assert run_threads([worker()])[0].result == "ab"

    def test_read_blocks(self):
        chan = Channel()
        order = []

        @do
        def reader():
            value = yield chan.read()
            order.append(value)

        @do
        def writer():
            order.append("writing")
            yield chan.write(42)

        sched = Scheduler(batch_limit=1)
        sched.spawn(reader())
        sched.spawn(writer())
        sched.run()
        assert order == ["writing", 42]

    def test_try_read(self):
        chan = Channel()

        @do
        def worker():
            miss = yield chan.try_read()
            yield chan.write(1)
            hit = yield chan.try_read()
            return (miss, hit)

        assert run_threads([worker()])[0].result == ((False, None), (True, 1))

    def test_writes_never_block(self):
        chan = Channel()

        @do
        def worker():
            for i in range(1000):
                yield chan.write(i)
            return len(chan)

        assert run_threads([worker()])[0].result == 1000

    def test_fifo_across_readers(self):
        chan = Channel()
        got = []

        @do
        def reader():
            value = yield chan.read()
            got.append(value)

        @do
        def writer():
            for i in range(4):
                yield chan.write(i)

        sched = Scheduler(batch_limit=1)
        for _ in range(4):
            sched.spawn(reader())
        sched.run()  # all readers parked
        sched.spawn(writer())
        sched.run()
        assert sorted(got) == [0, 1, 2, 3]


class TestBoundedChannel:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BoundedChannel(0)

    def test_writer_blocks_at_capacity(self):
        chan = BoundedChannel(2)
        order = []

        @do
        def writer():
            for i in range(4):
                yield chan.write(i)
                order.append(f"wrote {i}")

        @do
        def reader():
            for _ in range(4):
                value = yield chan.read()
                order.append(f"read {value}")

        sched = Scheduler(batch_limit=1)
        sched.spawn(writer())
        sched.run()  # writer parks once the buffer is full
        assert order == ["wrote 0", "wrote 1"]
        sched.spawn(reader())
        sched.run()
        assert order[-1] == "read 3"
        assert [o for o in order if o.startswith("read")] == [
            "read 0", "read 1", "read 2", "read 3",
        ]

    def test_preserves_fifo_under_contention(self):
        chan = BoundedChannel(1)
        got = []

        @do
        def writer(n):
            for i in range(n):
                yield chan.write(i)

        @do
        def reader(n):
            for _ in range(n):
                value = yield chan.read()
                got.append(value)

        sched = Scheduler(batch_limit=1)
        sched.spawn(writer(50))
        sched.spawn(reader(50))
        sched.run()
        assert got == list(range(50))


class TestSemaphore:
    def test_bounds_concurrency(self):
        sem = Semaphore(3)
        active = {"count": 0, "max": 0}

        @do
        def worker():
            yield sem.acquire()
            yield sys_nbio(lambda: active.__setitem__("count", active["count"] + 1))
            yield sys_nbio(
                lambda: active.__setitem__("max", max(active["max"], active["count"]))
            )
            yield sys_yield()
            yield sys_nbio(lambda: active.__setitem__("count", active["count"] - 1))
            yield sem.release()

        sched = Scheduler(batch_limit=1)
        for _ in range(10):
            sched.spawn(worker())
        sched.run()
        assert active["max"] == 3

    def test_with_permit_releases_on_error(self):
        sem = Semaphore(1)

        @do
        def worker():
            try:
                yield sem.with_permit(sys_throw(RuntimeError()))
            except RuntimeError:
                pass
            return sem.count

        assert run_threads([worker()])[0].result == 1

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Semaphore(-1)


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        active = {"readers": 0, "max_readers": 0}

        @do
        def reader():
            yield lock.acquire_read()
            yield sys_nbio(
                lambda: active.__setitem__("readers", active["readers"] + 1)
            )
            yield sys_nbio(
                lambda: active.__setitem__(
                    "max_readers", max(active["max_readers"], active["readers"])
                )
            )
            yield sys_yield()
            yield sys_nbio(
                lambda: active.__setitem__("readers", active["readers"] - 1)
            )
            yield lock.release_read()

        sched = Scheduler(batch_limit=1)
        for _ in range(5):
            sched.spawn(reader())
        sched.run()
        assert active["max_readers"] == 5

    def test_writer_excludes_readers(self):
        lock = RWLock()
        log = []

        @do
        def writer():
            yield lock.acquire_write()
            log.append("w-start")
            yield sys_yield()
            yield sys_yield()
            log.append("w-end")
            yield lock.release_write()

        @do
        def reader():
            yield lock.acquire_read()
            log.append("r")
            yield lock.release_read()

        sched = Scheduler(batch_limit=1)
        sched.spawn(writer())
        sched.step()  # writer holds
        sched.spawn(reader())
        sched.spawn(reader())
        sched.run()
        assert log == ["w-start", "w-end", "r", "r"]

    def test_writer_preference(self):
        lock = RWLock()
        log = []

        @do
        def reader(i):
            yield lock.acquire_read()
            log.append(f"r{i}")
            yield sys_yield()
            yield lock.release_read()

        @do
        def writer():
            yield lock.acquire_write()
            log.append("w")
            yield lock.release_write()

        sched = Scheduler(batch_limit=1)
        sched.spawn(reader(1))
        sched.step()  # reader 1 holds
        sched.spawn(writer())  # queued
        sched.spawn(reader(2))  # must wait behind the writer
        sched.run()
        assert log == ["r1", "w", "r2"]

    def test_release_without_hold_raises(self):
        lock = RWLock()

        @do
        def worker():
            caught = []
            try:
                yield lock.release_read()
            except SyncError:
                caught.append("read")
            try:
                yield lock.release_write()
            except SyncError:
                caught.append("write")
            return caught

        assert run_threads([worker()])[0].result == ["read", "write"]


class TestWaitGroup:
    def test_wait_for_workers(self):
        group = WaitGroup()
        done = []

        @do
        def worker(i):
            yield sys_yield()
            done.append(i)
            yield group.done()

        @do
        def waiter():
            yield group.add(3)
            for i in range(3):
                from repro.core.syscalls import sys_fork

                yield sys_fork(worker(i))
            yield group.wait()
            return sorted(done)

        assert run_threads([waiter()])[0].result == [0, 1, 2]

    def test_wait_on_zero_returns_immediately(self):
        group = WaitGroup()

        @do
        def worker():
            yield group.wait()
            return "fast"

        assert run_threads([worker()])[0].result == "fast"

    def test_negative_count_raises(self):
        group = WaitGroup()

        @do
        def worker():
            try:
                yield group.done()
            except SyncError:
                return "caught"

        assert run_threads([worker()])[0].result == "caught"


@settings(max_examples=25)
@given(
    n_threads=st.integers(2, 8),
    increments=st.integers(1, 30),
    batch=st.integers(1, 16),
)
def test_mutex_protected_counter_is_exact(n_threads, increments, batch):
    """Property: counter increments under a mutex never race, for any
    thread count, increment count, and scheduler batch size."""
    mutex = Mutex()
    state = {"value": 0}

    @do
    def worker():
        for _ in range(increments):
            yield mutex.acquire()
            snapshot = state["value"]
            yield sys_yield()  # maximize interleaving danger
            yield sys_nbio(lambda s=snapshot: state.__setitem__("value", s + 1))
            yield mutex.release()

    sched = Scheduler(batch_limit=batch)
    for _ in range(n_threads):
        sched.spawn(worker())
    sched.run()
    assert state["value"] == n_threads * increments
