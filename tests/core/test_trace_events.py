"""Coverage for the trace algebra, event masks, and small helpers."""

from __future__ import annotations

import pytest

from repro.core.events import (
    EVENT_ERROR,
    EVENT_HUP,
    EVENT_READ,
    EVENT_WRITE,
    describe_events,
)
from repro.core.monad import pure
from repro.core.scheduler import Scheduler, run_threads
from repro.core.syscalls import sys_get_tid, sys_special
from repro.core.trace import (
    SysEpollWait,
    SysFork,
    SysMutex,
    SysNBIO,
    SysRet,
    SysSpecial,
    SysTcp,
    format_trace_node,
)


class TestEventMasks:
    def test_bits_are_distinct(self):
        bits = [EVENT_READ, EVENT_WRITE, EVENT_ERROR, EVENT_HUP]
        assert len({*bits}) == 4
        for a in bits:
            for b in bits:
                if a is not b:
                    assert a & b == 0

    def test_describe_single(self):
        assert describe_events(EVENT_READ) == "READ"
        assert describe_events(EVENT_WRITE) == "WRITE"

    def test_describe_combination(self):
        assert describe_events(EVENT_READ | EVENT_HUP) == "READ|HUP"

    def test_describe_none(self):
        assert describe_events(0) == "NONE"


class TestTraceFormatting:
    def test_ret_shows_value(self):
        assert "SYS_RET" in format_trace_node(SysRet(42))
        assert "42" in format_trace_node(SysRet(42))

    def test_epoll_shows_fd_and_events(self):
        node = SysEpollWait("fd-7", EVENT_READ, lambda v: SysRet(v))
        text = format_trace_node(node)
        assert "SYS_EPOLL_WAIT" in text and "fd-7" in text

    def test_tagged_nodes(self):
        assert "SYS_NBIO" in format_trace_node(SysNBIO(lambda: SysRet(None)))
        assert "SYS_FORK" in format_trace_node(
            SysFork(lambda: SysRet(None), lambda: SysRet(None))
        )
        assert "op=take" in format_trace_node(
            __import__("repro.core.trace", fromlist=["SysMVar"]).SysMVar(
                None, "take", None, lambda v: SysRet(v)
            )
        )
        assert "op=recv" in format_trace_node(
            SysTcp("recv", (), lambda v: SysRet(v))
        )
        assert "kind=now" in format_trace_node(
            SysSpecial("now", None, lambda v: SysRet(v))
        )
        assert "op=acquire" in format_trace_node(
            SysMutex(None, "acquire", lambda v: SysRet(v))
        )

    def test_repr_uses_formatter(self):
        assert repr(SysRet("x")) == format_trace_node(SysRet("x"))


class TestSchedulerHelpers:
    def test_run_threads_returns_tcbs_in_order(self):
        tcbs = run_threads([pure(1), pure(2), pure(3)])
        assert [tcb.result for tcb in tcbs] == [1, 2, 3]

    def test_custom_special_registration(self):
        sched = Scheduler()
        sched.register_special("answer", lambda _s, _t, payload: payload * 2)
        tcb = sched.spawn(sys_special("answer", 21))
        sched.run()
        assert tcb.result == 42

    def test_get_tid_matches_tcb(self):
        sched = Scheduler()
        tcb = sched.spawn(sys_get_tid())
        sched.run()
        assert tcb.result == tcb.tid

    def test_instance_special_overrides_default(self):
        sched = Scheduler()
        sched.register_special("spawn", lambda _s, _t, _p: "shadowed")
        tcb = sched.spawn(sys_special("spawn", (pure(None), None)))
        sched.run()
        assert tcb.result == "shadowed"

    def test_exit_watcher_sees_every_exit(self):
        sched = Scheduler()
        seen = []
        sched.add_exit_watcher(lambda tcb: seen.append(tcb.tid))
        tcbs = [sched.spawn(pure(i)) for i in range(5)]
        sched.run()
        assert sorted(seen) == sorted(tcb.tid for tcb in tcbs)

    def test_on_syscall_hook_counts_nodes(self):
        sched = Scheduler()
        count = {"n": 0}
        sched.on_syscall = lambda _tcb, _node: count.__setitem__(
            "n", count["n"] + 1
        )
        sched.spawn(pure(None))
        sched.run()
        assert count["n"] >= 1
