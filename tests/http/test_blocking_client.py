"""Regression tests for the blocking client's chunked-response decoding.

``read_full_response`` previously assumed chunk-size lines carried no
extensions and that the terminal chunk was followed by a bare CRLF; a
server sending ``;ext`` size lines or a trailer section desynced the
keep-alive buffer, corrupting every later response on the connection.
The tests drive the parser over a socketpair so no runtime is involved.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.http.blocking_client import read_full_response


def serve_bytes(payload: bytes):
    """Return a client socket whose peer sends ``payload`` then EOF."""
    client, server = socket.socketpair()
    client.settimeout(5.0)

    def feed():
        server.sendall(payload)
        server.close()

    threading.Thread(target=feed, daemon=True).start()
    return client


HEAD = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"


class TestChunkedResponses:
    def test_plain_chunked(self):
        sock = serve_bytes(HEAD + b"5\r\nhello\r\n0\r\n\r\n")
        buffer = bytearray()
        status, headers, body = read_full_response(sock, buffer)
        assert status.startswith("HTTP/1.1 200")
        assert body == b"hello"
        assert buffer == b""
        sock.close()

    def test_chunk_size_extensions_tolerated(self):
        sock = serve_bytes(
            HEAD + b"5;name=value\r\nhello\r\n6 ; x\r\n world\r\n0;last\r\n\r\n"
        )
        _, _, body = read_full_response(sock, bytearray())
        assert body == b"hello world"
        sock.close()

    def test_trailer_section_tolerated(self):
        sock = serve_bytes(
            HEAD + b"3\r\nabc\r\n0\r\nX-Checksum: abc123\r\nX-Two: 2\r\n\r\n"
        )
        _, _, body = read_full_response(sock, bytearray())
        assert body == b"abc"
        sock.close()

    def test_keepalive_buffer_stays_in_sync(self):
        # Two pipelined responses, the first with extensions and
        # trailers: the second must still parse from the same buffer.
        second = (
            b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nnext"
        )
        sock = serve_bytes(
            HEAD + b"4;ext\r\nbody\r\n0\r\nX-T: 1\r\n\r\n" + second
        )
        buffer = bytearray()
        _, _, first_body = read_full_response(sock, buffer)
        assert first_body == b"body"
        status, headers, body = read_full_response(sock, buffer)
        assert status.startswith("HTTP/1.1 200")
        assert body == b"next"
        assert buffer == b""
        sock.close()

    def test_eof_mid_trailers_raises(self):
        sock = serve_bytes(HEAD + b"3\r\nabc\r\n0\r\nX-T: 1\r\n")
        with pytest.raises(ConnectionError):
            read_full_response(sock, bytearray())
        sock.close()
