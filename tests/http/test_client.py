"""The monadic HTTP client: the shared response parser + pooled requests.

Parser tests are sans-I/O (feed bytes, pop responses).  Client tests run
a real :class:`~repro.http.server.WebServer` upstream *inside the same
live runtime* — client and server are cooperative threads on one
scheduler, the paper's model end to end.
"""

from __future__ import annotations

import pytest

from repro.core.do_notation import do
from repro.core.thread import join_all, spawn
from repro.http.client import (
    HttpClient,
    RequestTimeout,
    ResponseParseError,
    ResponseParser,
    UpstreamProtocolError,
)
from repro.http.message import HttpResponse
from repro.runtime.live_runtime import LiveRuntime, make_listener
from repro.http.server import build_live_server


# ----------------------------------------------------------------------
# ResponseParser: sans-I/O.
# ----------------------------------------------------------------------
class TestResponseParser:
    def test_content_length_response(self):
        parser = ResponseParser()
        parser.expect("GET")
        parser.feed(
            b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n"
            b"Content-Length: 5\r\n\r\nhello"
        )
        response = parser.next_response()
        assert response is not None
        assert response.status == 200
        assert response.reason == "OK"
        assert response.version == "HTTP/1.1"
        assert response.status_line == "HTTP/1.1 200 OK"
        assert response.header("content-TYPE") == "text/plain"
        assert response.body == b"hello"
        assert response.framed and response.keep_alive
        assert parser.idle

    def test_byte_at_a_time_feed(self):
        parser = ResponseParser()
        parser.expect("GET")
        raw = b"HTTP/1.1 404 Not Found\r\nContent-Length: 4\r\n\r\ngone"
        for index in range(len(raw)):
            assert parser.next_response() is None
            parser.feed(raw[index:index + 1])
        response = parser.next_response()
        assert response.status == 404
        assert response.body == b"gone"

    def test_head_response_carries_no_body(self):
        # A HEAD response advertises Content-Length but sends no body
        # bytes; the expectation queue keeps the framing straight even
        # with a pipelined follow-up.
        parser = ResponseParser()
        parser.expect("HEAD")
        parser.expect("GET")
        parser.feed(
            b"HTTP/1.1 200 OK\r\nContent-Length: 5000\r\n\r\n"
            b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok"
        )
        head = parser.next_response()
        get = parser.next_response()
        assert head.body == b""
        assert head.header("content-length") == "5000"
        assert get.body == b"ok"
        assert parser.idle

    def test_no_body_statuses(self):
        parser = ResponseParser()
        parser.expect("GET")
        parser.expect("GET")
        parser.feed(
            b"HTTP/1.1 304 Not Modified\r\nLast-Modified: x\r\n\r\n"
            b"HTTP/1.1 204 No Content\r\n\r\n"
        )
        assert parser.next_response().status == 304
        assert parser.next_response().status == 204
        assert parser.idle

    def test_chunked_with_extensions_and_trailers(self):
        parser = ResponseParser()
        parser.expect("GET")
        parser.feed(
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"5;name=value\r\nhello\r\n6 ; x\r\n world\r\n"
            b"0\r\nX-Checksum: abc\r\n\r\n"
        )
        response = parser.next_response()
        assert response.body == b"hello world"
        assert response.framed
        assert parser.idle

    def test_eof_delimited_body(self):
        # No Content-Length, no chunking: the body runs to close and the
        # connection is not reusable.
        parser = ResponseParser()
        parser.expect("GET")
        parser.feed(b"HTTP/1.0 200 OK\r\n\r\npart one")
        assert parser.next_response() is None
        parser.feed(b", part two")
        parser.eof()
        response = parser.next_response()
        assert response.body == b"part one, part two"
        assert not response.framed
        assert not response.keep_alive

    def test_interim_1xx_does_not_consume_the_expectation(self):
        parser = ResponseParser()
        parser.expect("GET")
        parser.feed(
            b"HTTP/1.1 100 Continue\r\n\r\n"
            b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok"
        )
        assert parser.next_response().status == 100
        assert parser.next_response().body == b"ok"

    def test_pipelined_leftovers_are_reported(self):
        parser = ResponseParser()
        parser.expect("GET")
        parser.feed(
            b"HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\nasurplus"
        )
        assert parser.next_response().body == b"a"
        assert parser.buffered == len(b"surplus")
        assert not parser.idle
        assert parser.drain() == b"surplus"

    @pytest.mark.parametrize("raw", [
        b"NOT HTTP\r\n\r\n",
        b"HTTP/1.1 20 OK\r\n\r\n",
        b"HTTP/1.1 200 OK\r\nContent-Length: -1\r\n\r\n",
        b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n",
        b"HTTP/1.1 200 OK\r\nTransfer-Encoding: gzip\r\n\r\n",
    ])
    def test_malformed_responses_raise(self, raw):
        parser = ResponseParser()
        parser.expect("GET")
        with pytest.raises(ResponseParseError):
            parser.feed(raw)
            parser.next_response()

    def test_eof_mid_framed_body_raises(self):
        parser = ResponseParser()
        parser.expect("GET")
        parser.feed(b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nhal")
        with pytest.raises(ResponseParseError):
            parser.eof()

    def test_bad_chunk_size_raises(self):
        parser = ResponseParser()
        parser.expect("GET")
        with pytest.raises(ResponseParseError):
            parser.feed(
                b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
                b"0x5\r\nhello\r\n"
            )

    def test_connection_close_defeats_keep_alive(self):
        parser = ResponseParser()
        parser.expect("GET")
        parser.feed(
            b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n"
            b"Connection: close\r\n\r\n"
        )
        assert not parser.next_response().keep_alive

    def test_http10_defaults_to_close(self):
        parser = ResponseParser()
        parser.expect("GET")
        parser.feed(b"HTTP/1.0 200 OK\r\nContent-Length: 0\r\n\r\n")
        assert not parser.next_response().keep_alive


# ----------------------------------------------------------------------
# HttpClient against a live in-runtime upstream.
# ----------------------------------------------------------------------
@pytest.fixture
def rt():
    runtime = LiveRuntime(uncaught="store")
    yield runtime
    runtime.shutdown()


def run(rt, comp, timeout=10.0):
    done = []

    @do
    def driver():
        yield comp
        done.append(True)

    rt.spawn(driver(), name="test-driver")
    rt.run(until=lambda: bool(done), idle_timeout=timeout)
    assert done, "driver did not finish"


def start_upstream(rt, site=None, handler=None, name="upstream"):
    listener = make_listener()
    server = build_live_server(
        rt, listener,
        site=site if site is not None else {"index.html": b"hello world"},
        handler=handler, name=name,
    )
    rt.spawn(server.main(), name=name)
    return listener, server


def make_client(rt, listener, **kwargs) -> HttpClient:
    kwargs.setdefault("pool_size", 2)
    return HttpClient(rt.io, rt.timers, listener.getsockname(), **kwargs)


class TestHttpClient:
    def test_get_roundtrip(self, rt):
        listener, server = start_upstream(rt)
        client = make_client(rt, listener)
        results = []

        @do
        def body():
            response = yield client.get("/index.html")
            results.append(response)
            yield client.close()

        run(rt, body())
        server.stop()
        listener.close()
        (response,) = results
        assert response.status == 200
        assert response.body == b"hello world"
        assert client.stats()["requests"] == 1

    def test_keep_alive_reuses_the_connection(self, rt):
        listener, server = start_upstream(rt)
        client = make_client(rt, listener, pool_size=1)
        bodies = []

        @do
        def body():
            for _ in range(5):
                response = yield client.get("/index.html")
                bodies.append(response.body)
            yield client.close()

        run(rt, body())
        server.stop()
        listener.close()
        assert bodies == [b"hello world"] * 5
        assert client.pool.dials == 1  # one socket served all five
        assert client.pool.reuses == 4
        assert server.stats.connections == 1

    def test_head_and_error_statuses(self, rt):
        listener, server = start_upstream(rt)
        client = make_client(rt, listener)
        seen = []

        @do
        def body():
            head = yield client.head("/index.html")
            seen.append(("head", head.status, head.body,
                         head.header("content-length")))
            missing = yield client.get("/ghost")
            seen.append(("missing", missing.status))
            yield client.close()

        run(rt, body())
        server.stop()
        listener.close()
        assert seen[0] == ("head", 200, b"", str(len(b"hello world")))
        assert seen[1] == ("missing", 404)

    def test_chunked_upstream_response(self, rt):
        class Chunky:
            def respond(self, request):
                return pure_response(HttpResponse(
                    200, chunks=iter([b"alpha ", b"beta ", b"gamma"])
                ))

        listener, server = start_upstream(rt, handler=Chunky())
        client = make_client(rt, listener)
        results = []

        @do
        def body():
            response = yield client.get("/stream")
            results.append(response)
            yield client.close()

        run(rt, body())
        server.stop()
        listener.close()
        assert results[0].body == b"alpha beta gamma"
        assert results[0].header("transfer-encoding") == "chunked"

    def test_pipeline_one_write_many_responses(self, rt):
        site = {"a": b"AA", "b": b"BBB", "c": b"C"}
        listener, server = start_upstream(rt, site=site)
        client = make_client(rt, listener, pool_size=1)
        results = []

        @do
        def body():
            responses = yield client.pipeline(
                [("GET", "/a"), ("HEAD", "/b"), ("GET", "/c")]
            )
            results.append(responses)
            yield client.close()

        run(rt, body())
        server.stop()
        listener.close()
        (responses,) = results
        assert [r.body for r in responses] == [b"AA", b"", b"C"]
        assert responses[1].header("content-length") == "3"
        assert client.pool.dials == 1

    def test_request_deadline_surfaces_as_timeout(self, rt):
        class Stuck:
            def respond(self, request):
                return stuck_forever()

        listener, server = start_upstream(rt, handler=Stuck())
        client = make_client(rt, listener)
        errors = []

        @do
        def body():
            try:
                yield client.get("/slow", timeout=0.1)
            except RequestTimeout as exc:
                errors.append(exc)
            yield client.close()

        run(rt, body())
        server.stop()
        listener.close()
        assert len(errors) == 1
        assert client.timeouts == 1
        # The timed-out socket was discarded, never parked for reuse.
        assert client.pool.idle == 0

    def test_stale_keepalive_connection_is_retried_once(self, rt):
        # An upstream that closes every connection after one response:
        # the second request on the pooled socket hits EOF with zero
        # bytes received and must transparently retry on a fresh dial.
        class OneShot:
            def respond(self, request):
                return pure_response(HttpResponse(
                    200, body=b"once", headers={"Connection": "close"}
                ))

        listener, server = start_upstream(rt, handler=OneShot())
        client = make_client(rt, listener, pool_size=1)
        bodies = []

        @do
        def body():
            for _ in range(3):
                response = yield client.get("/once")
                bodies.append(response.body)
            yield client.close()

        run(rt, body())
        server.stop()
        listener.close()
        assert bodies == [b"once"] * 3
        # Connection: close is honored at release time, so each request
        # dialed fresh — no retries needed, no stale sockets reused.
        assert client.pool.dials == 3
        assert client.retries == 0

    def test_garbage_upstream_is_a_protocol_error(self, rt):
        # A raw TCP upstream speaking not-HTTP.
        import socket
        import threading

        gate = threading.Event()
        raw_listener = socket.socket()
        raw_listener.bind(("127.0.0.1", 0))
        raw_listener.listen(4)
        address = raw_listener.getsockname()

        def serve():
            conn, _ = raw_listener.accept()
            conn.recv(65536)
            conn.sendall(b"SMTP READY\r\n\r\n")
            gate.wait(5.0)
            conn.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        client = HttpClient(rt.io, rt.timers, address, pool_size=1)
        errors = []

        @do
        def body():
            try:
                yield client.get("/")
            except UpstreamProtocolError as exc:
                errors.append(exc)
            yield client.close()

        run(rt, body())
        gate.set()
        thread.join(5.0)
        raw_listener.close()
        assert len(errors) == 1

    def test_no_timer_thread_per_request(self, rt):
        # The PR-5 assertion at the client layer: every request arms a
        # deadline on the shared wheel, none forks a watchdog thread.
        names: list = []
        original = rt.sched._new_tcb

        def recording(name):
            names.append(name)
            return original(name)

        rt.sched._new_tcb = recording
        listener, server = start_upstream(rt)
        client = make_client(rt, listener, pool_size=1)

        @do
        def body():
            for _ in range(20):
                yield client.get("/index.html")
            yield client.close()

        run(rt, body())
        server.stop()
        listener.close()
        spawned = [name for name in names if name]
        assert not any("sweeper" in name for name in spawned)
        assert not any("watchdog" in name for name in spawned)
        sleepers = [name for name in spawned if "sleeper" in name]
        assert len(sleepers) <= 5

    def test_concurrent_requests_share_the_pool(self, rt):
        listener, server = start_upstream(rt)
        client = make_client(rt, listener, pool_size=2)
        bodies = []

        @do
        def one(index):
            response = yield client.get("/index.html")
            bodies.append((index, response.body))

        @do
        def body():
            handles = []
            for index in range(10):
                handle = yield spawn(one(index), name=f"req-{index}")
                handles.append(handle)
            yield join_all(handles)
            yield client.close()

        run(rt, body())
        server.stop()
        listener.close()
        assert len(bodies) == 10
        assert all(body == b"hello world" for _, body in bodies)
        assert client.pool.dials <= 2  # bounded by the pool, not by load
        assert server.stats.connections <= 2


# -- tiny handler helpers ----------------------------------------------
def pure_response(response):
    from repro.core.monad import pure
    return pure(response)


@do
def stuck_forever():
    from repro.core.syscalls import sys_sleep
    while True:
        yield sys_sleep(3600.0)
