"""The HTTP egress fast path: vectored responses and chunk coalescing.

Syscall claims are asserted through the live backend's egress counters
(``write_calls``/``writev_calls``) — the same in-process ctl-counter
method the poller tests use, since wall-clock deltas are meaningless on
a one-core CI box.  Byte-exactness under pipelining guards the
coalescing rewrite against torn or duplicated writes.
"""

from __future__ import annotations

import pytest

from repro.core.do_notation import do
from repro.core.monad import pure
from repro.http.message import HttpResponse
from repro.http.server import build_live_server
from repro.runtime.live_runtime import HAS_SENDMSG, LiveRuntime

BODY = b"<html>gathered!</html>"


@pytest.fixture
def rt():
    runtime = LiveRuntime(uncaught="store")
    yield runtime
    runtime.shutdown()


def _start(rt, handler=None, **kwargs):
    listener = rt.make_listener()
    server = build_live_server(
        rt, listener, site={"/index.html": BODY}, handler=handler, **kwargs
    )
    rt.spawn(server.main(), name="server")
    return server, listener.getsockname()[1]


def _drive(rt, port, raw_request, client_writes):
    """Monadic client: send ``raw_request``, collect until server close.

    Appends one entry to ``client_writes`` per write syscall the client
    itself issued, so callers can subtract client traffic from the
    backend's shared egress counters.
    """
    collected = bytearray()
    finished = []

    @do
    def client():
        conn = yield rt.io.connect(("127.0.0.1", port))
        yield rt.io.write_all(conn, raw_request)
        client_writes.append(1)
        while True:
            data = yield rt.io.read(conn, 65536)
            if not data:
                break
            collected.extend(data)
        finished.append(True)
        yield rt.io.close(conn)

    rt.spawn(client(), name="raw-client")
    rt.run(until=lambda: bool(finished), idle_timeout=5.0)
    assert finished, "client never completed"
    return bytes(collected)


def _decode_chunked(framed: bytes) -> bytes:
    body = bytearray()
    rest = framed
    while True:
        line, _, rest = rest.partition(b"\r\n")
        size = int(line, 16)
        if size == 0:
            assert rest == b"\r\n"
            return bytes(body)
        body.extend(rest[:size])
        assert rest[size:size + 2] == b"\r\n"
        rest = rest[size + 2:]


class _SmallChunksHandler:
    """A handful of tiny chunks: must coalesce under the watermark."""

    def respond(self, request):
        return pure(HttpResponse(
            200, chunks=iter([b"alpha-", b"beta-", b"gamma"])
        ))


@pytest.mark.skipif(not HAS_SENDMSG, reason="no sendmsg on this platform")
class TestOneSyscallPerResponse:
    def test_header_and_body_leave_as_one_sendmsg(self, rt):
        _server, port = _start(rt)
        client_writes: list[int] = []
        requests = 10
        raw = (
            b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n" * (requests - 1)
            + b"GET /index.html HTTP/1.1\r\nHost: x\r\n"
              b"Connection: close\r\n\r\n"
        )
        before_total = rt.backend.write_syscalls
        data = _drive(rt, port, raw, client_writes)
        assert data.count(b"HTTP/1.1 200 OK") == requests
        server_writes = (
            rt.backend.write_syscalls - before_total - len(client_writes)
        )
        # One gathered write per response: never a separate header send.
        assert server_writes == requests

    def test_small_chunked_response_is_one_syscall(self, rt):
        # Header + 3 framed chunks + terminal chunk, all under the
        # watermark: ONE sendmsg, with the trailer riding the final
        # data flush rather than paying its own write.
        _server, port = _start(rt, handler=_SmallChunksHandler())
        client_writes: list[int] = []
        raw = b"GET /s HTTP/1.1\r\nConnection: close\r\n\r\n"
        before_total = rt.backend.write_syscalls
        data = _drive(rt, port, raw, client_writes)
        head, _, framed = data.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert _decode_chunked(framed) == b"alpha-beta-gamma"
        server_writes = (
            rt.backend.write_syscalls - before_total - len(client_writes)
        )
        assert server_writes == 1

    def test_error_response_is_one_syscall(self, rt):
        _server, port = _start(rt)
        client_writes: list[int] = []
        raw = b"GET /missing.html HTTP/1.1\r\nConnection: close\r\n\r\n"
        before_total = rt.backend.write_syscalls
        data = _drive(rt, port, raw, client_writes)
        assert data.startswith(b"HTTP/1.1 404 ")
        server_writes = (
            rt.backend.write_syscalls - before_total - len(client_writes)
        )
        assert server_writes == 1


class TestChunkCoalescing:
    def test_low_watermark_still_byte_exact(self, rt):
        # Watermark of 1: every chunk flushes individually (the old
        # behavior) — framing must be identical either way.
        _server, port = _start(rt, handler=_SmallChunksHandler(),
                               chunk_watermark=1)
        data = _drive(rt, port,
                      b"GET /s HTTP/1.1\r\nConnection: close\r\n\r\n", [])
        head, _, framed = data.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert _decode_chunked(framed) == b"alpha-beta-gamma"

    def test_watermark_splits_large_streams(self, rt):
        big = [b"x" * 4096] * 8  # 32 KiB body, 16 KiB watermark

        class Handler:
            def respond(self, request):
                return pure(HttpResponse(200, chunks=iter(big)))

        _server, port = _start(rt, handler=Handler())
        data = _drive(rt, port,
                      b"GET /big HTTP/1.1\r\nConnection: close\r\n\r\n", [])
        _head, _, framed = data.partition(b"\r\n\r\n")
        assert _decode_chunked(framed) == b"".join(big)

    def test_pipelined_chunked_responses_are_not_torn(self, rt):
        # Three pipelined requests against a chunked handler: the three
        # responses must arrive strictly framed, in order, each with
        # exactly one terminal chunk — no duplicate or torn writes from
        # the coalescing buffers.
        _server, port = _start(rt, handler=_SmallChunksHandler())
        raw = (
            b"GET /a HTTP/1.1\r\n\r\n"
            b"GET /b HTTP/1.1\r\n\r\n"
            b"GET /c HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        data = _drive(rt, port, raw, [])
        assert data.count(b"HTTP/1.1 200 OK") == 3
        # Exactly one terminal chunk per response (the pattern is
        # anchored on the preceding chunk's CRLF so the "/1.0" in the
        # Server header cannot false-match).
        assert data.count(b"\r\n0\r\n\r\n") == 3
        rest = data
        for _ in range(3):
            _head, _, rest = rest.partition(b"\r\n\r\n")
            terminal = rest.find(b"\r\n0\r\n\r\n")
            framed, rest = rest[:terminal + 7], rest[terminal + 7:]
            assert _decode_chunked(framed) == b"alpha-beta-gamma"
        assert rest == b""

    def test_head_request_sends_header_only(self, rt):
        _server, port = _start(rt, handler=_SmallChunksHandler())
        data = _drive(rt, port,
                      b"HEAD /s HTTP/1.1\r\nConnection: close\r\n\r\n", [])
        head, _, rest = data.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert rest == b""
