"""HTTP/1.1 completeness on the live path: bounded parser memory
(431/413), chunked transfer encoding, and If-Modified-Since/304 against a
real docroot."""

from __future__ import annotations

import os
import time

import pytest

from repro.core.do_notation import do
from repro.core.monad import pure
from repro.http.message import (
    LAST_CHUNK,
    HttpResponse,
    encode_chunk,
    http_date,
    parse_http_date,
)
from repro.http.parser import HttpParseError, RequestParser
from repro.http.server import build_live_server
from repro.runtime.live_runtime import LiveRuntime

BODY = b"<html>http11 features</html>"


# ----------------------------------------------------------------------
# Unit level: parser limits and message helpers.
# ----------------------------------------------------------------------
class TestParserLimits:
    def test_default_limits_accept_normal_requests(self):
        parser = RequestParser()
        parser.feed(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
        assert parser.next_request() is not None

    def test_configured_header_limit_rejects_with_431(self):
        parser = RequestParser(max_header_bytes=128)
        with pytest.raises(HttpParseError) as err:
            parser.feed(b"GET / HTTP/1.1\r\nX-Big: " + b"a" * 256)
        assert err.value.status == 431

    def test_header_limit_applies_to_complete_blocks_too(self):
        # A whole oversized block in one feed() must not sneak through.
        parser = RequestParser(max_header_bytes=128)
        with pytest.raises(HttpParseError) as err:
            parser.feed(
                b"GET / HTTP/1.1\r\nX-Big: " + b"a" * 256 + b"\r\n\r\n"
            )
        assert err.value.status == 431

    def test_dribbled_oversized_header_rejected_before_completion(self):
        parser = RequestParser(max_header_bytes=128)
        parser.feed(b"GET / HTTP/1.1\r\n")
        with pytest.raises(HttpParseError) as err:
            for _ in range(64):
                parser.feed(b"X-Padding: " + b"b" * 16 + b"\r\n")
        assert err.value.status == 431
        # The buffer never grew far past the limit: memory stays bounded.
        assert parser.buffered <= 128 + 32

    def test_configured_body_limit_rejects_with_413(self):
        parser = RequestParser(max_body_bytes=64)
        with pytest.raises(HttpParseError) as err:
            parser.feed(
                b"PUT /k HTTP/1.1\r\nContent-Length: 100000\r\n\r\n"
            )
        assert err.value.status == 413

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            RequestParser(max_header_bytes=1)
        with pytest.raises(ValueError):
            RequestParser(max_body_bytes=-1)


class TestMessageHelpers:
    def test_chunk_framing_round_trip(self):
        assert encode_chunk(b"alpha") == b"5\r\nalpha\r\n"
        assert encode_chunk(b"") == b""
        assert LAST_CHUNK == b"0\r\n\r\n"

    def test_http_date_round_trip(self):
        stamp = 1_700_000_000.0
        assert parse_http_date(http_date(stamp)) == stamp

    def test_parse_http_date_garbage_is_none(self):
        assert parse_http_date("") is None
        assert parse_http_date("not a date") is None

    def test_parse_http_date_asctime_is_gmt(self):
        # RFC 7231 obsolete asctime form parses tz-naive: it must be
        # read as GMT, never the server's local zone.
        imf = parse_http_date("Sun, 06 Nov 1994 08:49:37 GMT")
        asctime = parse_http_date("Sun Nov  6 08:49:37 1994")
        assert imf is not None and asctime == imf

    def test_chunked_response_header_block(self):
        response = HttpResponse(200, chunks=[b"ab", b"c"])
        header = response.header_block().lower()
        assert b"transfer-encoding: chunked" in header
        assert b"content-length" not in header
        assert response.encode().endswith(
            b"2\r\nab\r\n1\r\nc\r\n0\r\n\r\n"
        )


# ----------------------------------------------------------------------
# Live path: a real server on real sockets.
# ----------------------------------------------------------------------
def _drive(rt, port, raw_request, until_idle=5.0):
    """Send raw bytes from a monadic client; collect until server closes."""
    collected = bytearray()
    finished = []

    @do
    def client():
        conn = yield rt.io.connect(("127.0.0.1", port))
        yield rt.io.write_all(conn, raw_request)
        while True:
            data = yield rt.io.read(conn, 65536)
            if not data:
                break
            collected.extend(data)
        finished.append(True)
        yield rt.io.close(conn)

    rt.spawn(client(), name="raw-client")
    rt.run(until=lambda: bool(finished), idle_timeout=until_idle)
    assert finished, "client never completed"
    return bytes(collected)


def _decode_chunked(framed: bytes) -> bytes:
    """Strict chunked-body decoder (asserts on malformed framing)."""
    body = bytearray()
    rest = framed
    while True:
        line, _, rest = rest.partition(b"\r\n")
        size = int(line, 16)
        if size == 0:
            assert rest == b"\r\n"
            return bytes(body)
        body.extend(rest[:size])
        assert rest[size:size + 2] == b"\r\n"
        rest = rest[size + 2:]


class _ChunkedHandler:
    """A protocol handler streaming a body of unknown length."""

    def respond(self, request):
        return pure(HttpResponse(
            200,
            headers={"Content-Type": "text/plain"},
            chunks=iter([b"alpha-", b"", b"beta-beta-", b"g"]),
        ))


@pytest.fixture
def live(tmp_path):
    rt = LiveRuntime(uncaught="store")
    (tmp_path / "index.html").write_bytes(BODY)
    servers = []

    def start(**kwargs):
        listener = rt.make_listener()
        server = build_live_server(
            rt, listener, docroot=str(tmp_path), **kwargs
        )
        rt.spawn(server.main(), name="server")
        servers.append((server, listener))
        return server, listener.getsockname()[1]

    yield rt, start, tmp_path
    for server, listener in servers:
        server.stop()
        listener.close()
    rt.shutdown()


class TestLive431And413:
    def test_oversized_header_gets_431(self, live):
        rt, start, _root = live
        _server, port = start(max_header_bytes=256)
        raw = (b"GET /index.html HTTP/1.1\r\nX-Big: " + b"x" * 1024 +
               b"\r\n\r\n")
        data = _drive(rt, port, raw)
        assert data.startswith(b"HTTP/1.1 431 ")

    def test_oversized_body_gets_413(self, live):
        rt, start, _root = live
        _server, port = start(max_body_bytes=32)
        raw = (b"PUT /k HTTP/1.1\r\nContent-Length: 4096\r\n\r\n" +
               b"y" * 4096)
        data = _drive(rt, port, raw)
        assert data.startswith(b"HTTP/1.1 413 ")


class TestLiveChunked:
    def test_chunked_response_streams_and_terminates(self, live):
        rt, start, _root = live
        _server, port = start(handler=_ChunkedHandler())
        raw = b"GET /anything HTTP/1.1\r\nConnection: close\r\n\r\n"
        data = _drive(rt, port, raw)
        head, _, framed = data.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert b"transfer-encoding: chunked" in head.lower()
        assert b"content-length" not in head.lower()
        assert _decode_chunked(framed) == b"alpha-beta-beta-g"

    def test_http10_request_gets_buffered_content_length(self, live):
        # Chunked framing is 1.1-only: a 1.0 client must receive the
        # same body buffered under a Content-Length instead.
        rt, start, _root = live
        _server, port = start(handler=_ChunkedHandler())
        raw = b"GET /anything HTTP/1.0\r\n\r\n"
        data = _drive(rt, port, raw)
        head, _, body = data.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert b"transfer-encoding" not in head.lower()
        assert b"content-length: 17" in head.lower()
        assert body == b"alpha-beta-beta-g"

    def test_head_on_chunked_sends_no_body(self, live):
        rt, start, _root = live
        _server, port = start(handler=_ChunkedHandler())
        raw = b"HEAD /anything HTTP/1.1\r\nConnection: close\r\n\r\n"
        data = _drive(rt, port, raw)
        head, _, rest = data.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert rest == b""


class TestLiveConditionalGet:
    def test_200_carries_last_modified(self, live):
        rt, start, root = live
        _server, port = start()
        raw = b"GET /index.html HTTP/1.1\r\nConnection: close\r\n\r\n"
        data = _drive(rt, port, raw)
        assert data.startswith(b"HTTP/1.1 200 OK")
        assert b"Last-Modified: " in data
        sent = parse_http_date(
            data.split(b"Last-Modified: ")[1].split(b"\r\n")[0].decode()
        )
        mtime = os.path.getmtime(root / "index.html")
        assert sent is not None and abs(sent - mtime) < 2.0

    def test_if_modified_since_at_mtime_is_304(self, live):
        rt, start, root = live
        server, port = start()
        mtime = os.path.getmtime(root / "index.html")
        raw = (b"GET /index.html HTTP/1.1\r\n"
               b"If-Modified-Since: " + http_date(mtime).encode() +
               b"\r\nConnection: close\r\n\r\n")
        data = _drive(rt, port, raw)
        head, _, body = data.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 304 Not Modified")
        assert body == b""
        # A 304 is a served response, not an error.
        assert server.stats.responses_ok == 1
        assert server.stats.responses_err == 0

    def test_stale_if_modified_since_serves_full_body(self, live):
        rt, start, root = live
        _server, port = start()
        mtime = os.path.getmtime(root / "index.html")
        stale = http_date(mtime - 3600)
        raw = (b"GET /index.html HTTP/1.1\r\n"
               b"If-Modified-Since: " + stale.encode() +
               b"\r\nConnection: close\r\n\r\n")
        data = _drive(rt, port, raw)
        assert data.startswith(b"HTTP/1.1 200 OK")
        assert data.endswith(BODY)

    def test_updated_file_invalidates_304_and_cache(self, live):
        rt, start, root = live
        # mtime_ttl=0: this test is about the *strict* validator path —
        # a change must be visible on the very next request, without
        # waiting out the probe cache's TTL window.
        server, port = start(mtime_ttl=0)
        # Warm the cache with v1.
        raw_plain = b"GET /index.html HTTP/1.1\r\nConnection: close\r\n\r\n"
        data = _drive(rt, port, raw_plain)
        assert data.endswith(BODY)
        old_mtime = os.path.getmtime(root / "index.html")
        since = http_date(old_mtime).encode()
        # Rewrite the file into the future: the validator must now miss
        # AND the cached v1 body must not be served under the new
        # Last-Modified (cache invalidation by mtime).
        (root / "index.html").write_bytes(b"<html>version two</html>")
        future = time.time() + 10
        os.utime(root / "index.html", (future, future))
        raw = (b"GET /index.html HTTP/1.1\r\n"
               b"If-Modified-Since: " + since +
               b"\r\nConnection: close\r\n\r\n")
        data = _drive(rt, port, raw)
        assert data.startswith(b"HTTP/1.1 200 OK")
        assert data.endswith(b"<html>version two</html>")


class _CountingFs:
    """Wrap a filesystem to count mtime probes (the stat cost)."""

    def __init__(self, inner):
        self.inner = inner
        self.mtime_calls = 0

    def mtime(self, path):
        self.mtime_calls += 1
        return self.inner.mtime(path)

    def exists(self, path):
        return self.inner.exists(path)

    def open(self, path):
        return self.inner.open(path)


class TestMtimeProbeCache:
    def test_probe_cached_within_ttl(self, live):
        # Default short TTL: back-to-back requests for a hot file cost
        # one stat, not one per request (the conditional-GET stat-cost
        # fix: the blocking-pool hop is amortized over the TTL window).
        rt, start, _root = live
        server, port = start()
        counting = _CountingFs(server.handler.fs)
        server.handler.fs = counting
        raw = b"GET /index.html HTTP/1.1\r\nConnection: close\r\n\r\n"
        for _ in range(3):
            data = _drive(rt, port, raw)
            assert data.startswith(b"HTTP/1.1 200 OK")
        assert counting.mtime_calls == 1

    def test_ttl_zero_probes_every_request(self, live):
        # mtime_ttl=0 keeps the strict pre-cache behavior: every request
        # revalidates against the real filesystem.
        rt, start, _root = live
        server, port = start(mtime_ttl=0)
        counting = _CountingFs(server.handler.fs)
        server.handler.fs = counting
        raw = b"GET /index.html HTTP/1.1\r\nConnection: close\r\n\r\n"
        for _ in range(3):
            data = _drive(rt, port, raw)
            assert data.startswith(b"HTTP/1.1 200 OK")
        assert counting.mtime_calls == 3


class _BrokenHandler:
    """A handler with a bug: the protocol must contain it as a 500."""

    def respond(self, request):
        return pure(None).fmap(lambda _: {}["missing"])


class _ExplodingChunksHandler:
    """Chunks iterator that dies after the header is on the wire."""

    def __init__(self, chunks=None):
        self._chunks = chunks

    def respond(self, request):
        def default():
            yield b"first-"
            raise RuntimeError("stream source died")

        chunks = self._chunks if self._chunks is not None else default()
        return pure(HttpResponse(200, chunks=chunks))


class TestHandlerContainment:
    def test_chunk_stream_failure_closes_without_injection(self, live):
        # Once the 200 header and a chunk are out, an error response
        # would corrupt the chunk framing: the server must just hang up.
        rt, start, _root = live
        server, port = start(handler=_ExplodingChunksHandler())
        raw = b"GET /stream HTTP/1.1\r\n\r\n"  # keep-alive on purpose
        data = _drive(rt, port, raw)
        head, _, framed = data.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert framed.startswith(b"6\r\nfirst-\r\n")
        # No second status line injected mid-body, no terminal chunk:
        # the connection closed instead (EOF ended the client's read).
        assert data.count(b"HTTP/1.1") == 1
        assert not framed.endswith(b"0\r\n\r\n")
        assert server.stats.responses_err == 0

    def test_non_bytes_chunk_closes_without_injection(self, live):
        # encode_chunk raising (str chunk) after the header is sent must
        # take the same clean-hangup path as a dying iterator.
        rt, start, _root = live
        _server, port = start(
            handler=_ExplodingChunksHandler(iter([b"ok", "not-bytes"]))
        )
        raw = b"GET /stream HTTP/1.1\r\n\r\n"
        data = _drive(rt, port, raw)
        assert data.count(b"HTTP/1.1") == 1  # no injected error response
        assert b"2\r\nok\r\n" in data
        assert not data.endswith(b"0\r\n\r\n")

    def test_non_http_error_becomes_500(self, live):
        rt, start, _root = live
        server, port = start(handler=_BrokenHandler())
        raw = b"GET /boom HTTP/1.1\r\nConnection: close\r\n\r\n"
        data = _drive(rt, port, raw)
        assert data.startswith(b"HTTP/1.1 500 ")
        assert server.stats.responses_err == 1
