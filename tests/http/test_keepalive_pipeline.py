"""Keep-alive and pipelining through the monadic web server, on both
backends: the simulated kernel and the live runtime over real sockets.

The server code is byte-identical across the two (the paper's pitch); the
parametrized fixture swaps only the runtime, listener, and filesystem.
"""

from __future__ import annotations

import pytest

from repro.core.do_notation import do
from repro.http.server import (
    DocRootFilesystem,
    KernelSocketLayer,
    WebServer,
    build_live_server,
)
from repro.runtime.live_runtime import LiveRuntime
from repro.runtime.sim_runtime import SimRuntime

BODY = b"<html>" + b"k" * 250 + b"</html>"


class Driver:
    """One server on one runtime, plus a raw-bytes request driver."""

    def __init__(self, rt, server, connect_target, live):
        self.rt = rt
        self.server = server
        self.connect_target = connect_target
        self.live = live

    def exchange(self, raw_request: bytes, expected_responses: int,
                 chunk_delay: bool = False) -> bytes:
        """Send ``raw_request`` (possibly byte-dribbled), read until the
        server closes or ``expected_responses`` responses arrive."""
        rt = self.rt
        collected = bytearray()
        finished = []

        def have_all() -> bool:
            return _count_responses(bytes(collected)) >= expected_responses

        @do
        def client():
            conn = yield rt.io.connect(self.connect_target)
            if chunk_delay:
                for index in range(0, len(raw_request), 7):
                    yield rt.io.write_all(conn, raw_request[index:index + 7])
            else:
                yield rt.io.write_all(conn, raw_request)
            while True:
                data = yield rt.io.read(conn, 65536)
                if not data:
                    break
                collected.extend(data)
                if have_all():
                    break
            finished.append(True)
            yield rt.io.close(conn)

        rt.spawn(client(), name="raw-client")
        if self.live:
            rt.run(until=lambda: bool(finished), idle_timeout=5.0)
        else:
            rt.run(until=lambda: bool(finished))
        assert finished, "client never completed"
        return bytes(collected)


def _count_responses(data: bytes) -> int:
    """Complete HTTP responses at the head of ``data``."""
    count = 0
    while True:
        end = data.find(b"\r\n\r\n")
        if end < 0:
            return count
        head = data[:end]
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
        total = end + 4 + length
        if len(data) < total:
            return count
        count += 1
        data = data[total:]


@pytest.fixture(params=["sim", "live"])
def driver(request, tmp_path):
    if request.param == "sim":
        rt = SimRuntime(uncaught="store")
        rt.kernel.fs.create_file("index.html", len(BODY))
        listener = rt.kernel.net.listen()
        server = WebServer(
            KernelSocketLayer(rt.io, rt.kernel.net, listener=listener),
            rt.kernel.fs,
        )
        rt.spawn(server.main(), name="server")
        yield Driver(rt, server, listener, live=False)
        return
    rt = LiveRuntime(uncaught="store")
    (tmp_path / "index.html").write_bytes(BODY)
    listener = rt.make_listener()
    port = listener.getsockname()[1]
    server = build_live_server(rt, listener, docroot=str(tmp_path))
    rt.spawn(server.main(), name="server")
    yield Driver(rt, server, ("127.0.0.1", port), live=True)
    server.stop()
    listener.close()
    rt.shutdown()


class TestKeepAlive:
    def test_multiple_requests_one_connection(self, driver):
        raw = (b"GET /index.html HTTP/1.1\r\n\r\n"
               b"GET /index.html HTTP/1.1\r\n\r\n"
               b"GET /index.html HTTP/1.1\r\nConnection: close\r\n\r\n")
        data = driver.exchange(raw, expected_responses=3)
        assert data.count(b"HTTP/1.1 200 OK") == 3
        assert driver.server.stats.requests == 3
        assert driver.server.stats.connections == 1

    def test_connection_close_honored(self, driver):
        raw = b"GET /index.html HTTP/1.1\r\nConnection: close\r\n\r\n"
        # expected_responses high on purpose: the loop must end via EOF.
        data = driver.exchange(raw, expected_responses=2)
        assert _count_responses(data) == 1
        assert b"200 OK" in data

    def test_http10_defaults_to_close(self, driver):
        raw = b"GET /index.html HTTP/1.0\r\n\r\n"
        data = driver.exchange(raw, expected_responses=2)
        assert _count_responses(data) == 1

    def test_http10_keepalive_header_persists(self, driver):
        raw = (b"GET /index.html HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
               b"GET /index.html HTTP/1.0\r\n\r\n")
        data = driver.exchange(raw, expected_responses=2)
        assert _count_responses(data) == 2
        assert driver.server.stats.requests == 2


class TestPipelining:
    def test_pipelined_burst_answered_in_order(self, driver):
        burst = b"".join(
            b"GET /index.html HTTP/1.1\r\n\r\n" for _ in range(5)
        ) + b"GET /missing.html HTTP/1.1\r\nConnection: close\r\n\r\n"
        data = driver.exchange(burst, expected_responses=6)
        assert data.count(b"HTTP/1.1 200 OK") == 5
        # The last pipelined response is the 404 — ordering preserved.
        assert data.rindex(b"HTTP/1.1 404") > data.rindex(b"HTTP/1.1 200")
        assert driver.server.stats.requests == 6

    def test_dribbled_bytes_parse_identically(self, driver):
        raw = (b"GET /index.html HTTP/1.1\r\n\r\n"
               b"GET /index.html HTTP/1.1\r\nConnection: close\r\n\r\n")
        data = driver.exchange(raw, expected_responses=2, chunk_delay=True)
        assert data.count(b"HTTP/1.1 200 OK") == 2
        assert driver.server.stats.requests == 2

    def test_body_bytes_correct_on_both_backends(self, driver):
        raw = b"GET /index.html HTTP/1.1\r\nConnection: close\r\n\r\n"
        data = driver.exchange(raw, expected_responses=1)
        _, _, body = data.partition(b"\r\n\r\n")
        assert len(body) == len(BODY)
        if driver.live:
            # The live docroot serves the real file's real bytes.
            assert body == BODY


class TestDocRootContainment:
    def test_dotdot_traversal_is_nonexistent(self, tmp_path):
        root = tmp_path / "site"
        root.mkdir()
        (tmp_path / "secret.txt").write_bytes(b"outside")
        fs = DocRootFilesystem(str(root))
        assert not fs.exists("../secret.txt")
        with pytest.raises(FileNotFoundError):
            fs.open("../secret.txt")

    def test_symlink_escape_is_nonexistent(self, tmp_path):
        root = tmp_path / "site"
        root.mkdir()
        (tmp_path / "secret.txt").write_bytes(b"outside")
        (root / "leak").symlink_to(tmp_path / "secret.txt")
        fs = DocRootFilesystem(str(root))
        assert not fs.exists("leak")
        with pytest.raises(FileNotFoundError):
            fs.open("leak")

    def test_inside_symlink_and_plain_file_served(self, tmp_path):
        root = tmp_path / "site"
        root.mkdir()
        (root / "real.txt").write_bytes(b"inside")
        (root / "alias.txt").symlink_to(root / "real.txt")
        fs = DocRootFilesystem(str(root))
        assert fs.exists("real.txt")
        assert fs.exists("alias.txt")
        handle = fs.open("alias.txt")
        with open(handle, "rb") as real_file:
            assert real_file.read() == b"inside"
        handle.close()
