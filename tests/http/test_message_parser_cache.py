"""HTTP building blocks: messages, incremental parser, file cache."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.http.cache import FileCache
from repro.http.message import (
    HttpError,
    HttpRequest,
    HttpResponse,
    guess_content_type,
)
from repro.http.parser import HttpParseError, RequestParser


def parse_one(raw: bytes) -> HttpRequest:
    parser = RequestParser()
    parser.feed(raw)
    request = parser.next_request()
    assert request is not None
    return request


class TestRequestParsing:
    def test_simple_get(self):
        request = parse_one(b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.target == "/index.html"
        assert request.version == "HTTP/1.1"
        assert request.header("host") == "x"

    def test_headers_case_insensitive(self):
        request = parse_one(
            b"GET / HTTP/1.1\r\nCoNtEnT-TyPe: text/html\r\n\r\n"
        )
        assert request.header("Content-Type") == "text/html"

    def test_body_by_content_length(self):
        request = parse_one(
            b"POST /submit HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"
        )
        assert request.body == b"hello"

    def test_pipelined_requests(self):
        parser = RequestParser()
        parser.feed(
            b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"
        )
        assert parser.next_request().target == "/a"
        assert parser.next_request().target == "/b"
        assert parser.next_request() is None

    def test_incomplete_header_waits(self):
        parser = RequestParser()
        parser.feed(b"GET / HTTP/1.1\r\nHost:")
        assert parser.next_request() is None
        parser.feed(b" example\r\n\r\n")
        assert parser.next_request() is not None

    def test_incomplete_body_waits(self):
        parser = RequestParser()
        parser.feed(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nhal")
        assert parser.next_request() is None
        parser.feed(b"f-and-half")  # only 10 bytes total count
        request = parser.next_request()
        assert request.body == b"half-and-h"

    def test_bad_request_line(self):
        parser = RequestParser()
        with pytest.raises(HttpParseError) as info:
            parser.feed(b"NONSENSE\r\n\r\n")
        assert info.value.status == 400

    def test_unknown_method(self):
        parser = RequestParser()
        with pytest.raises(HttpParseError) as info:
            parser.feed(b"BREW /pot HTTP/1.1\r\n\r\n")
        assert info.value.status == 501

    def test_bad_version(self):
        parser = RequestParser()
        with pytest.raises(HttpParseError) as info:
            parser.feed(b"GET / SPDY/99\r\n\r\n")
        assert info.value.status == 400

    def test_bad_content_length(self):
        parser = RequestParser()
        with pytest.raises(HttpParseError) as info:
            parser.feed(b"POST / HTTP/1.1\r\nContent-Length: pony\r\n\r\n")
        assert info.value.status == 400

    def test_oversized_header_block(self):
        parser = RequestParser()
        with pytest.raises(HttpParseError) as info:
            parser.feed(b"GET / HTTP/1.1\r\nX: " + b"a" * 20000)
        assert info.value.status == 431

    def test_bad_header_line(self):
        parser = RequestParser()
        with pytest.raises(HttpParseError):
            parser.feed(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")

    @given(st.lists(st.integers(1, 40), max_size=30))
    def test_chunking_invariance(self, cut_sizes):
        """Feeding the same bytes in any chunking parses identically."""
        raw = (
            b"POST /path?q=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 11\r\n"
            b"\r\nhello world"
            b"GET /second HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
        )
        parser = RequestParser()
        position = 0
        for size in cut_sizes:
            parser.feed(raw[position:position + size])
            position += size
        parser.feed(raw[position:])
        first = parser.next_request()
        second = parser.next_request()
        assert first.target == "/path?q=1"
        assert first.body == b"hello world"
        assert second.target == "/second"
        assert second.keep_alive


class TestContentLengthValidation:
    """Regression: bare int() accepted "+5", "1_0", " 7 ", "١٢"."""

    @pytest.mark.parametrize("value", [
        b"+5", b"-0", b"1_0", b"1 0", b"0x10", b"5.", b"", b"\xd9\xa5",
    ])
    def test_non_digit_lengths_rejected(self, value):
        parser = RequestParser()
        with pytest.raises(HttpParseError) as info:
            parser.feed(
                b"POST / HTTP/1.1\r\nContent-Length: " + value + b"\r\n\r\n"
            )
        assert info.value.status == 400

    def test_plain_digits_still_fine(self):
        request = parse_one(
            b"POST / HTTP/1.1\r\nContent-Length: 007\r\n\r\n1234567"
        )
        assert request.body == b"1234567"

    def test_duplicate_content_length_rejected(self):
        parser = RequestParser()
        with pytest.raises(HttpParseError) as info:
            parser.feed(
                b"POST / HTTP/1.1\r\nContent-Length: 5\r\n"
                b"Content-Length: 5\r\n\r\n"
            )
        assert info.value.status == 400

    def test_conflicting_content_length_rejected(self):
        parser = RequestParser()
        with pytest.raises(HttpParseError) as info:
            parser.feed(
                b"POST / HTTP/1.1\r\nContent-Length: 5\r\n"
                b"Content-Length: 50\r\n\r\n"
            )
        assert info.value.status == 400

    def test_comma_joined_length_rejected(self):
        # A single field with a folded list value is the same ambiguity.
        parser = RequestParser()
        with pytest.raises(HttpParseError) as info:
            parser.feed(b"POST / HTTP/1.1\r\nContent-Length: 5, 5\r\n\r\n")
        assert info.value.status == 400


class TestRepeatedHeaders:
    def test_non_framing_headers_comma_join(self):
        # RFC 9110 §5.2: repeated fields are equivalent to one field with
        # a comma-joined value — last-one-wins dropped cookie/accept data.
        request = parse_one(
            b"GET / HTTP/1.1\r\nAccept: text/html\r\nAccept: text/plain\r\n"
            b"X-Tag: a\r\nX-Tag: b\r\nX-Tag: c\r\n\r\n"
        )
        assert request.header("accept") == "text/html, text/plain"
        assert request.header("x-tag") == "a, b, c"

    def test_duplicate_host_rejected(self):
        parser = RequestParser()
        with pytest.raises(HttpParseError) as info:
            parser.feed(b"GET / HTTP/1.1\r\nHost: a\r\nHost: b\r\n\r\n")
        assert info.value.status == 400


class TestChunkedRequestBodies:
    """Regression: chunked bodies were silently ignored, so the body
    bytes were re-parsed as the next request — a smuggling shape."""

    CHUNKED = (
        b"POST /upload HTTP/1.1\r\nHost: h\r\n"
        b"Transfer-Encoding: chunked\r\n\r\n"
        b"5\r\nhello\r\n"
        b"6\r\n world\r\n"
        b"0\r\n\r\n"
    )

    def test_simple_chunked_body(self):
        request = parse_one(self.CHUNKED)
        assert request.body == b"hello world"

    def test_smuggling_shape_stays_in_body(self):
        # The embedded GET must land in the body, never be parsed as a
        # second request.
        smuggled = b"GET /admin HTTP/1.1\r\n\r\n"
        raw = (
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            + b"%x\r\n" % len(smuggled) + smuggled + b"\r\n0\r\n\r\n"
        )
        parser = RequestParser()
        parser.feed(raw)
        first = parser.next_request()
        assert first.body == smuggled
        assert parser.next_request() is None
        assert parser.buffered == 0

    def test_te_and_content_length_is_400(self):
        parser = RequestParser()
        with pytest.raises(HttpParseError) as info:
            parser.feed(
                b"POST / HTTP/1.1\r\nContent-Length: 4\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n0\r\n\r\n"
            )
        assert info.value.status == 400

    def test_unsupported_coding_is_501(self):
        parser = RequestParser()
        with pytest.raises(HttpParseError) as info:
            parser.feed(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: gzip, chunked\r\n\r\n"
            )
        assert info.value.status == 501

    def test_chunk_extensions_ignored(self):
        request = parse_one(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"5;name=value;flag\r\nhello\r\n0;last\r\n\r\n"
        )
        assert request.body == b"hello"

    def test_trailer_section_consumed(self):
        parser = RequestParser()
        parser.feed(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"3\r\nabc\r\n0\r\nX-Checksum: 900150983cd2\r\nX-Two: 2\r\n\r\n"
            b"GET /next HTTP/1.1\r\n\r\n"
        )
        first = parser.next_request()
        assert first.body == b"abc"
        # Trailer fields are consumed, not promoted to headers.
        assert first.header("x-checksum") == ""
        assert parser.next_request().target == "/next"

    def test_bad_chunk_size_rejected(self):
        for bad in (b"0x5", b"+5", b"5 5", b"", b"g1"):
            parser = RequestParser()
            with pytest.raises(HttpParseError) as info:
                parser.feed(
                    b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                    + bad + b"\r\n"
                )
            assert info.value.status == 400

    def test_chunk_missing_crlf_rejected(self):
        parser = RequestParser()
        with pytest.raises(HttpParseError) as info:
            parser.feed(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                b"3\r\nabcXX"
            )
        assert info.value.status == 400

    def test_body_bound_enforced_across_chunks(self):
        parser = RequestParser(max_body_bytes=100)
        with pytest.raises(HttpParseError) as info:
            parser.feed(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                + b"28\r\n" + b"x" * 0x28 + b"\r\n"  # 40 bytes: fine
                + b"28\r\n" + b"x" * 0x28 + b"\r\n"  # 80 bytes: fine
                + b"28\r\n"                          # would cross 100
            )
        assert info.value.status == 413

    def test_trailer_bound_enforced(self):
        parser = RequestParser(max_header_bytes=128)
        with pytest.raises(HttpParseError) as info:
            parser.feed(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                b"0\r\n" + b"X-Pad: " + b"y" * 200 + b"\r\n"
            )
        assert info.value.status == 431

    @given(st.lists(st.integers(1, 17), max_size=40))
    def test_chunked_byte_split_invariance(self, cut_sizes):
        raw = self.CHUNKED + b"GET /after HTTP/1.1\r\n\r\n"
        parser = RequestParser()
        position = 0
        for size in cut_sizes:
            parser.feed(raw[position:position + size])
            position += size
        parser.feed(raw[position:])
        first = parser.next_request()
        second = parser.next_request()
        assert first.body == b"hello world"
        assert second.target == "/after"


class TestMessage:
    def test_keep_alive_defaults(self):
        http11 = parse_one(b"GET / HTTP/1.1\r\n\r\n")
        http10 = parse_one(b"GET / HTTP/1.0\r\n\r\n")
        assert http11.keep_alive
        assert not http10.keep_alive

    def test_keep_alive_overrides(self):
        close11 = parse_one(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        keep10 = parse_one(
            b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
        )
        assert not close11.keep_alive
        assert keep10.keep_alive

    def test_path_strips_query(self):
        request = parse_one(b"GET /file.html?v=2 HTTP/1.1\r\n\r\n")
        assert request.path == "/file.html"

    def test_response_encode(self):
        response = HttpResponse(200, b"body", {"Content-Type": "text/plain"})
        raw = response.encode()
        assert raw.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 4\r\n" in raw
        assert raw.endswith(b"\r\n\r\nbody")

    def test_error_response(self):
        response = HttpResponse.for_error(HttpError(404, "/ghost"))
        assert response.status == 404
        assert b"404" in response.body

    def test_content_types(self):
        assert guess_content_type("/a/index.html") == "text/html"
        assert guess_content_type("/data.bin") == "application/octet-stream"
        assert guess_content_type("/noext") == "application/octet-stream"


class TestFileCache:
    def test_miss_then_hit(self):
        cache = FileCache(1000)
        assert cache.get("a") is None
        cache.put("a", b"x" * 100)
        assert cache.get("a") == b"x" * 100
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_by_bytes(self):
        cache = FileCache(250)
        cache.put("a", b"x" * 100)
        cache.put("b", b"y" * 100)
        cache.put("c", b"z" * 100)  # evicts "a"
        assert cache.get("a") is None
        assert cache.get("b") is not None
        assert cache.evictions == 1

    def test_lru_order(self):
        cache = FileCache(250)
        cache.put("a", b"x" * 100)
        cache.put("b", b"y" * 100)
        cache.get("a")  # promote a
        cache.put("c", b"z" * 100)  # evicts b, not a
        assert cache.get("a") is not None
        assert cache.get("b") is None

    def test_oversized_entry_refused(self):
        cache = FileCache(50)
        assert not cache.put("big", b"x" * 100)
        assert cache.used_bytes == 0

    def test_replace_updates_bytes(self):
        cache = FileCache(1000)
        cache.put("a", b"x" * 100)
        cache.put("a", b"y" * 50)
        assert cache.used_bytes == 50
        assert cache.get("a") == b"y" * 50

    def test_invalidate_and_clear(self):
        cache = FileCache(1000)
        cache.put("a", b"123")
        cache.invalidate("a")
        assert cache.used_bytes == 0
        cache.put("b", b"45")
        cache.clear()
        assert cache.entry_count == 0

    def test_hit_rate(self):
        cache = FileCache(1000)
        assert cache.hit_rate == 0.0
        cache.put("a", b"1")
        cache.get("a")
        cache.get("nope")
        assert cache.hit_rate == pytest.approx(0.5)

    @given(
        ops=st.lists(
            st.tuples(st.text("ab", min_size=1, max_size=3),
                      st.integers(1, 80)),
            max_size=40,
        )
    )
    def test_capacity_invariant(self, ops):
        """Property: used bytes never exceed capacity, and every hit
        returns exactly what was stored."""
        cache = FileCache(200)
        shadow = {}
        for path, size in ops:
            content = path.encode() * size
            if cache.put(path, content):
                shadow[path] = content
            assert cache.used_bytes <= 200
            got = cache.get(path)
            if got is not None:
                assert got == shadow[path]
