"""Overload control: per-server admission caps shed excess connections
with a clean 503 + close, while admitted connections keep serving."""

from __future__ import annotations

import pytest

from repro.core.do_notation import do
from repro.core.syscalls import sys_sleep
from repro.http.server import build_live_server
from repro.runtime.live_runtime import LiveRuntime

SITE = {"index.html": b"<html>capacity test</html>"}
REQUEST = b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n"


def _one_response(data: bytes) -> bytes | None:
    """The first complete HTTP response in ``data``, or None."""
    end = data.find(b"\r\n\r\n")
    if end < 0:
        return None
    length = 0
    for line in data[:end].split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    total = end + 4 + length
    return data[:total] if len(data) >= total else None


@pytest.fixture
def capped():
    rt = LiveRuntime(uncaught="store")
    listener = rt.make_listener()
    server = build_live_server(
        rt, listener, site=SITE, max_connections=2, accept_batch=8
    )
    rt.spawn(server.main(), name="server")
    yield rt, server, listener.getsockname()[1]
    server.stop()
    listener.close()
    rt.shutdown()


class TestAdmissionCap:
    def test_excess_connections_get_503_and_close(self, capped):
        rt, server, port = capped
        results: dict[str, bytes] = {}
        eof: dict[str, bool] = {}
        shed_done: list[str] = []
        hold = {"release": False}

        @do
        def client(tag):
            conn = yield rt.io.connect(("127.0.0.1", port))
            yield rt.io.write_all(conn, REQUEST)
            data = bytearray()
            while _one_response(bytes(data)) is None:
                chunk = yield rt.io.read(conn, 65536)
                if not chunk:
                    break
                data.extend(chunk)
            results[tag] = bytes(data)
            if b"503" in bytes(data).split(b"\r\n", 1)[0]:
                # Shed: the server must also hang up on us.
                trailing = yield rt.io.read(conn, 4096)
                eof[tag] = trailing == b""
                yield rt.io.close(conn)
                shed_done.append(tag)
                return
            # Admitted: hold the connection open until released.
            while not hold["release"]:
                yield sys_sleep(0.005)
            yield rt.io.close(conn)

        for tag in ("a", "b", "c"):
            rt.spawn(client(tag))
        rt.run(
            until=lambda: len(results) == 3 and bool(shed_done),
            idle_timeout=5.0,
        )
        assert len(results) == 3
        assert shed_done

        statuses = sorted(
            response.split(b"\r\n", 1)[0] for response in results.values()
        )
        assert statuses.count(b"HTTP/1.1 200 OK") == 2
        assert statuses.count(b"HTTP/1.1 503 Service Unavailable") == 1
        shed_tag = next(
            tag for tag, response in results.items() if b"503" in response
        )
        assert eof[shed_tag], "shed connection must see a clean close"
        # The 503 names Connection: close.
        assert b"connection: close" in results[shed_tag].lower()

        assert server.stats.shed == 1
        assert server.stats.active == 2
        assert server.stats.connections == 2
        # Shed responses are not served requests.
        assert server.stats.requests == 2

        # Freeing a slot readmits: release the holders, then reconnect.
        hold["release"] = True
        rt.run(until=lambda: server.stats.active == 0, idle_timeout=5.0)
        assert server.stats.active == 0

        late: dict[str, bytes] = {}

        @do
        def late_client():
            conn = yield rt.io.connect(("127.0.0.1", port))
            yield rt.io.write_all(conn, REQUEST)
            data = bytearray()
            while _one_response(bytes(data)) is None:
                chunk = yield rt.io.read(conn, 65536)
                if not chunk:
                    break
                data.extend(chunk)
            late["response"] = bytes(data)
            yield rt.io.close(conn)

        rt.spawn(late_client())
        rt.run(until=lambda: bool(late), idle_timeout=5.0)
        assert late["response"].startswith(b"HTTP/1.1 200 OK")
        assert server.stats.shed == 1  # no new sheds

    def test_uncapped_server_never_sheds(self):
        rt = LiveRuntime(uncaught="store")
        listener = rt.make_listener()
        server = build_live_server(rt, listener, site=SITE)
        try:
            assert server.max_connections is None
            done = []

            @do
            def client():
                conn = yield rt.io.connect(
                    ("127.0.0.1", listener.getsockname()[1])
                )
                yield rt.io.write_all(conn, REQUEST)
                data = bytearray()
                while _one_response(bytes(data)) is None:
                    chunk = yield rt.io.read(conn, 65536)
                    if not chunk:
                        break
                    data.extend(chunk)
                assert bytes(data).startswith(b"HTTP/1.1 200 OK")
                done.append(True)
                yield rt.io.close(conn)

            rt.spawn(server.main(), name="server")
            for _ in range(5):
                rt.spawn(client())
            rt.run(until=lambda: len(done) == 5, idle_timeout=5.0)
            assert len(done) == 5
            assert server.stats.shed == 0
            rt.run(until=lambda: server.stats.active == 0, idle_timeout=5.0)
            assert server.stats.active == 0
        finally:
            server.stop()
            listener.close()
            rt.shutdown()

    def test_cap_validation(self):
        rt = LiveRuntime()
        listener = rt.make_listener()
        try:
            with pytest.raises(ValueError):
                build_live_server(rt, listener, site=SITE, max_connections=0)
            with pytest.raises(ValueError):
                build_live_server(rt, listener, site=SITE, accept_batch=0)
        finally:
            listener.close()
            rt.shutdown()
