"""The parser's pooled-buffer feed path: ``feed(buf, length)``.

Pooled ingress hands the parser the pool's oversized backing bytearray
plus a byte count, then *reuses the buffer* for the next recv.  These
tests pin the two properties that makes safe: length bounds the parse
exactly (trailing garbage in the buffer is never read), and nothing the
parser keeps aliases the buffer (scribbling over it after ``feed``
must not corrupt parsed requests or carried-over tails).
"""

from __future__ import annotations

import pytest

from repro.http.parser import RequestParser

REQUESTS = (
    b"POST /alpha HTTP/1.1\r\nHost: a\r\nContent-Length: 11\r\n\r\n"
    b"hello world"
    b"GET /beta?q=1 HTTP/1.1\r\nHost: b\r\nAccept: */*\r\n\r\n"
    b"POST /gamma HTTP/1.1\r\nHost: c\r\nTransfer-Encoding: chunked\r\n\r\n"
    b"4\r\nwiki\r\n6\r\npedia \r\nB\r\nin chunks.\n\r\n0\r\n"
    b"X-Trailer: ok\r\n\r\n"
    b"GET /delta HTTP/1.1\r\nHost: d\r\n\r\n"
)


def _drain(parser: RequestParser) -> list:
    out = []
    while True:
        request = parser.next_request()
        if request is None:
            return out
        out.append(request)


def _summarize(request) -> tuple:
    return (request.method, request.target, dict(request.headers),
            request.body)


def _reference_parse() -> list[tuple]:
    parser = RequestParser()
    parser.feed(REQUESTS)
    return [_summarize(r) for r in _drain(parser)]


def _pooled_parse(chunk_size: int, buffer_bytes: int = 4096,
                  scribble: bool = False) -> list[tuple]:
    """Replay REQUESTS through a reused oversized buffer, ``chunk_size``
    payload bytes per feed — the pooled-recv call pattern."""
    parser = RequestParser()
    buf = bytearray(buffer_bytes)
    out = []
    position = 0
    while position < len(REQUESTS):
        chunk = REQUESTS[position:position + chunk_size]
        position += len(chunk)
        buf[:len(chunk)] = chunk
        parser.feed(buf, len(chunk))
        if scribble:
            # The pool will hand this same buffer to the next recv:
            # anything the parser kept must already be its own copy.
            for i in range(buffer_bytes):
                buf[i] = 0xAA
        out.extend(_summarize(r) for r in _drain(parser))
    return out


class TestPooledFeed:
    def test_one_feed_whole_buffer(self):
        assert _pooled_parse(len(REQUESTS)) == _reference_parse()

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 7, 16, 64, 256, 1024])
    def test_chunking_invariance(self, chunk_size):
        # Byte-exact against the joined path at every split granularity.
        assert _pooled_parse(chunk_size) == _reference_parse()

    @pytest.mark.parametrize("chunk_size", [1, 3, 17, 100, 4096])
    def test_buffer_reuse_cannot_corrupt_requests(self, chunk_size):
        assert _pooled_parse(chunk_size, scribble=True) == _reference_parse()

    def test_length_bounds_the_parse(self):
        # Garbage beyond ``length`` — say, the tail of a previous, larger
        # recv — must be invisible.
        parser = RequestParser()
        buf = bytearray(b"GET /x HTTP/1.1\r\n\r\nGARBAGE-NOT-A-REQUEST")
        parser.feed(buf, len(b"GET /x HTTP/1.1\r\n\r\n"))
        requests = _drain(parser)
        assert [r.target for r in requests] == ["/x"]
        assert parser.buffered == 0

    def test_split_mid_header_carries_over(self):
        parser = RequestParser()
        first = bytearray(b"GET /y HTTP/1.1\r\nHost:")
        parser.feed(first, len(first))
        first[:] = b"\xaa" * len(first)  # reuse the buffer
        assert parser.next_request() is None
        second = bytearray(b" q\r\n\r\n")
        parser.feed(second, len(second))
        request = parser.next_request()
        assert request is not None
        assert request.headers["host"] == "q"

    def test_memoryview_input_accepted(self):
        parser = RequestParser()
        raw = b"GET /mv HTTP/1.1\r\n\r\n"
        parser.feed(memoryview(raw))
        request = parser.next_request()
        assert request is not None and request.target == "/mv"

    def test_bodies_never_alias_the_buffer(self):
        parser = RequestParser()
        buf = bytearray(4096)
        payload = b"POST /b HTTP/1.1\r\nContent-Length: 5\r\n\r\nabcde"
        buf[:len(payload)] = payload
        parser.feed(buf, len(payload))
        request = parser.next_request()
        buf[:] = bytes(4096)  # wipe
        assert request.body == b"abcde"
        assert type(request.body) is bytes
