"""HTTP Range conformance (single-range 206/416) on the live path.

Every case runs against both egress paths — sendfile (docroot default)
and the in-memory cache/AIO path (``sendfile=False``) — and asserts the
two produce byte-identical responses: the Range logic is shared, the
body transport is not.
"""

from __future__ import annotations

import pytest

from repro.core.do_notation import do
from repro.http.server import StaticFileHandler, build_live_server
from repro.runtime.live_runtime import LiveRuntime

def _payload() -> bytes:
    return b"".join(b"%03d-" % i for i in range(25))  # 100 bytes


@pytest.fixture
def live(tmp_path):
    rt = LiveRuntime(uncaught="store")
    (tmp_path / "data.txt").write_bytes(_payload())
    servers = []

    def start(**kwargs):
        listener = rt.make_listener()
        server = build_live_server(
            rt, listener, docroot=str(tmp_path), **kwargs
        )
        rt.spawn(server.main(), name="server")
        servers.append((server, listener))
        return server, listener.getsockname()[1]

    yield rt, start
    for server, listener in servers:
        server.stop()
        listener.close()
    rt.shutdown()


def _drive(rt, port, raw_request, until_idle=5.0):
    collected = bytearray()
    finished = []

    @do
    def client():
        conn = yield rt.io.connect(("127.0.0.1", port))
        yield rt.io.write_all(conn, raw_request)
        while True:
            data = yield rt.io.read(conn, 65536)
            if not data:
                break
            collected.extend(data)
        finished.append(True)
        yield rt.io.close(conn)

    rt.spawn(client(), name="raw-client")
    rt.run(until=lambda: bool(finished), idle_timeout=until_idle)
    assert finished, "client never completed"
    return bytes(collected)


def _get(rt, port, range_header=None, method=b"GET"):
    raw = method + b" /data.txt HTTP/1.1\r\nConnection: close\r\n"
    if range_header is not None:
        raw += b"Range: " + range_header + b"\r\n"
    return _drive(rt, port, raw + b"\r\n")


def _split(response: bytes):
    head, _, body = response.partition(b"\r\n\r\n")
    headers = {}
    lines = head.split(b"\r\n")
    for line in lines[1:]:
        name, _, value = line.partition(b": ")
        headers[name.lower()] = value
    return lines[0], headers, body


class TestRangeConformance:
    # Each case: (range header or None, status, slice, content-range)
    CASES = [
        (None, b"200", (0, 100), None),
        (b"bytes=0-3", b"206", (0, 4), b"bytes 0-3/100"),
        (b"bytes=96-", b"206", (96, 100), b"bytes 96-99/100"),
        (b"bytes=-8", b"206", (92, 100), b"bytes 92-99/100"),
        # A suffix longer than the file selects the whole file (206).
        (b"bytes=-500", b"206", (0, 100), b"bytes 0-99/100"),
        # An end past EOF clamps to the final byte.
        (b"bytes=90-100000", b"206", (90, 100), b"bytes 90-99/100"),
        # Start past EOF: 416 with the total size advertised.
        (b"bytes=100-", b"416", None, b"bytes */100"),
        (b"bytes=500-600", b"416", None, b"bytes */100"),
        (b"bytes=-0", b"416", None, b"bytes */100"),
        # Ignorable per RFC 9110: multi-range and malformed serve 200.
        (b"bytes=0-1,3-4", b"200", (0, 100), None),
        (b"bytes=abc-def", b"200", (0, 100), None),
        (b"bytes=5-2", b"200", (0, 100), None),
        (b"items=0-3", b"200", (0, 100), None),
    ]

    @pytest.mark.parametrize("sendfile", [True, False],
                             ids=["sendfile", "memory"])
    @pytest.mark.parametrize("case", CASES,
                             ids=[str(c[0]) for c in CASES])
    def test_range_cases(self, live, sendfile, case):
        rt, start = live
        header, status, span, content_range = case
        _server, port = start(sendfile=sendfile)
        status_line, headers, body = _split(_get(rt, port, header))
        assert b" %s " % status in status_line
        if span is not None:
            expected = _payload()[span[0]:span[1]]
            assert body == expected
            assert headers[b"content-length"] == b"%d" % len(expected)
        else:
            assert body == b""
        if content_range is not None:
            assert headers[b"content-range"] == content_range
        else:
            assert b"content-range" not in headers

    def test_paths_are_byte_identical(self, live):
        rt, start = live
        _s1, port_sendfile = start(sendfile=True)
        _s2, port_memory = start(sendfile=False)
        for header in (None, b"bytes=10-19", b"bytes=-1", b"bytes=200-"):
            a = _get(rt, port_sendfile, header)
            b = _get(rt, port_memory, header)
            assert a == b, f"diverged for Range: {header!r}"

    def test_sendfile_path_skips_aio_and_cache(self, live):
        rt, start = live
        server, port = start()
        response = _get(rt, port, b"bytes=0-9")
        _status, _headers, body = _split(response)
        assert body == _payload()[:10]
        assert server.stats.aio_reads == 0
        assert rt.backend.sendfile_calls >= 1
        # Nothing got pulled into the application cache on this path.
        assert server.cache.get("data.txt") is None

    def test_head_with_range_sends_no_body(self, live):
        rt, start = live
        _server, port = start()
        status_line, headers, body = _split(
            _get(rt, port, b"bytes=0-9", method=b"HEAD")
        )
        assert b" 206 " in status_line
        assert headers[b"content-length"] == b"10"
        assert headers[b"content-range"] == b"bytes 0-9/100"
        assert body == b""

    def test_memory_path_ranges_cached_content(self, live):
        # Preloaded site entries stay on the memory path even when
        # sendfile is on; ranges must work there identically.
        rt, start = live
        server, port = start()
        server.cache.put("data.txt", _payload())
        status_line, headers, body = _split(_get(rt, port, b"bytes=4-7"))
        assert b" 206 " in status_line
        assert body == _payload()[4:8]
        assert rt.backend.sendfile_calls == 0


class TestParseRangeUnit:
    def test_handler_flag_off_without_fs_support(self):
        # EmptyFilesystem has no open_sendfile: auto-detect stays off
        # and forcing it on is refused (nothing to open).
        from repro.http.cache import FileCache
        from repro.http.server import EmptyFilesystem

        handler = StaticFileHandler(EmptyFilesystem(), FileCache(1024))
        assert handler.sendfile is False
        forced = StaticFileHandler(EmptyFilesystem(), FileCache(1024),
                                   sendfile=True)
        assert forced.sendfile is False
