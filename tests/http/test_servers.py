"""End-to-end web-server tests: monadic server (both socket layers) and
the Apache-like baseline."""

from __future__ import annotations

import pytest

from repro.core.do_notation import do
from repro.http.baseline import ApacheLikeServer
from repro.http.server import AppTcpSocketLayer, KernelSocketLayer, WebServer
from repro.runtime.sim_runtime import SimRuntime
from repro.simos.net import DuplexPacketLink
from repro.simos.nptl import KConnect, KRead, KWrite, NptlSim, run_sims
from repro.tcp.socket_api import install_tcp
from repro.tcp.stack import TcpParams, TcpStack, connect_stacks


def make_site(rt, files):
    """Create files on the runtime's filesystem."""
    for name, size in files.items():
        rt.kernel.fs.create_file(name, size)


class TestKernelLayerServer:
    def make(self, files=None, cache_bytes=10 * 1024 * 1024):
        rt = SimRuntime(uncaught="store")
        make_site(rt, files or {"index.html": 300, "data.bin": 5000})
        server = WebServer(
            KernelSocketLayer(rt.io, rt.kernel.net), rt.kernel.fs,
            cache_bytes=cache_bytes,
        )
        return rt, server

    def run_request(self, rt, server, raw_request, reads=1):
        """Spawn the server, issue raw bytes, return response bytes."""
        responses = []
        if server.layer.listener is None:
            server.layer.listener = rt.kernel.net.listen()
        self.listener = server.layer.listener

        @do
        def client():
            # The server's listener is created inside main(); find it by
            # connecting to the network's most recent listener.
            conn = yield rt.io.connect(self.listener)
            yield rt.io.write_all(conn, raw_request)
            collected = bytearray()
            while True:
                data = yield rt.io.read(conn, 65536)
                if not data:
                    break
                collected.extend(data)
                if reads == 1 and b"\r\n\r\n" in collected:
                    header_end = collected.find(b"\r\n\r\n")
                    header = bytes(collected[:header_end]).decode("latin-1")
                    length = 0
                    for line in header.split("\r\n")[1:]:
                        if line.lower().startswith("content-length:"):
                            length = int(line.split(":")[1])
                    if len(collected) >= header_end + 4 + length:
                        break
            responses.append(bytes(collected))
            yield rt.io.close(conn)

        rt.spawn(server.main(), name="server")
        rt.spawn(client(), name="client")
        rt.run(until=lambda: bool(responses))
        return responses[0]

    def test_get_serves_file_content(self):
        rt, server = self.make()
        raw = self.run_request(
            rt, server, b"GET /index.html HTTP/1.0\r\n\r\n"
        )
        assert raw.startswith(b"HTTP/1.1 200 OK\r\n")
        header, _, body = raw.partition(b"\r\n\r\n")
        assert b"Content-Length: 300" in header
        expected = rt.kernel.fs.open("index.html").content_at(0, 300)
        assert body[:300] == expected

    def test_404_for_missing_file(self):
        rt, server = self.make()
        raw = self.run_request(rt, server, b"GET /ghost.html HTTP/1.0\r\n\r\n")
        assert raw.startswith(b"HTTP/1.1 404")

    def test_405_for_post(self):
        rt, server = self.make()
        raw = self.run_request(
            rt, server,
            b"POST /index.html HTTP/1.0\r\nContent-Length: 2\r\n\r\nhi",
        )
        assert raw.startswith(b"HTTP/1.1 405")

    def test_400_for_garbage(self):
        rt, server = self.make()
        raw = self.run_request(rt, server, b"NOT A REQUEST\r\n\r\n")
        assert raw.startswith(b"HTTP/1.1 400") or raw.startswith(b"HTTP/1.1 501")

    def test_head_sends_headers_only(self):
        rt, server = self.make()
        raw = self.run_request(rt, server, b"HEAD /data.bin HTTP/1.0\r\n\r\n")
        header, _, body = raw.partition(b"\r\n\r\n")
        assert b"Content-Length: 5000" in header
        assert body == b""

    def test_keep_alive_serves_multiple_requests(self):
        rt, server = self.make()
        raw = self.run_request(
            rt, server,
            b"GET /index.html HTTP/1.1\r\n\r\n"
            b"GET /index.html HTTP/1.1\r\nConnection: close\r\n\r\n",
            reads=2,
        )
        assert raw.count(b"HTTP/1.1 200 OK") == 2
        assert server.stats.requests == 2

    def test_cache_hit_skips_disk(self):
        rt, server = self.make()
        self.run_request(rt, server, b"GET /data.bin HTTP/1.0\r\n\r\n")
        disk_after_first = rt.kernel.disk.stats.completed
        assert disk_after_first > 0
        # Same runtime, second client: served from the app cache.
        raw = self.run_request(rt, server, b"GET /data.bin HTTP/1.0\r\n\r\n")
        assert raw.startswith(b"HTTP/1.1 200")
        assert rt.kernel.disk.stats.completed == disk_after_first
        assert server.cache.hits >= 1

    def test_zero_cache_always_hits_disk(self):
        rt, server = self.make(cache_bytes=0)
        self.run_request(rt, server, b"GET /data.bin HTTP/1.0\r\n\r\n")
        first = rt.kernel.disk.stats.completed
        self.run_request(rt, server, b"GET /data.bin HTTP/1.0\r\n\r\n")
        assert rt.kernel.disk.stats.completed > first


class TestAppTcpLayerServer:
    """The same server code over the application-level TCP stack —
    the paper's 'editing one line of code'."""

    def make_world(self):
        rt = SimRuntime(uncaught="store")
        make_site(rt, {"index.html": 1200})
        clock = rt.kernel.clock
        link = DuplexPacketLink(clock, 12.5e6, 0.001, seed=3)
        server_stack = TcpStack(clock, "server", TcpParams(), seed=1)
        client_stack = TcpStack(clock, "client", TcpParams(), seed=2)
        connect_stacks(client_stack, server_stack, link)
        ssock = install_tcp(rt.sched, server_stack)
        csock = install_tcp(rt.sched, client_stack)
        server = WebServer(AppTcpSocketLayer(ssock, port=80), rt.kernel.fs)
        return rt, server, csock

    def test_get_over_app_tcp(self):
        rt, server, csock = self.make_world()
        responses = []

        @do
        def client():
            conn = yield csock.connect("server", 80)
            yield csock.send(
                conn, b"GET /index.html HTTP/1.0\r\n\r\n"
            )
            collected = bytearray()
            while True:
                data = yield csock.recv(conn, 65536)
                if not data:
                    break
                collected.extend(data)
            responses.append(bytes(collected))
            yield csock.close(conn)

        rt.spawn(server.main(), name="server")
        rt.spawn(client(), name="client")
        rt.run(until=lambda: bool(responses))
        raw = responses[0]
        assert raw.startswith(b"HTTP/1.1 200 OK")
        assert b"Content-Length: 1200" in raw

    def test_concurrent_clients_over_app_tcp(self):
        rt, server, csock = self.make_world()
        done = []

        @do
        def client(i):
            conn = yield csock.connect("server", 80)
            yield csock.send(conn, b"GET /index.html HTTP/1.0\r\n\r\n")
            collected = bytearray()
            while True:
                data = yield csock.recv(conn, 65536)
                if not data:
                    break
                collected.extend(data)
            assert collected.startswith(b"HTTP/1.1 200")
            done.append(i)
            yield csock.close(conn)

        rt.spawn(server.main(), name="server")
        for i in range(8):
            rt.spawn(client(i))
        rt.run(until=lambda: len(done) == 8)
        assert sorted(done) == list(range(8))


class TestApacheBaseline:
    def make(self, files=None, workers=4):
        rt = SimRuntime(uncaught="store")  # reuse its kernel only
        kernel = rt.kernel
        make_site(rt, files or {"index.html": 700})
        listener = kernel.net.listen()
        nptl = NptlSim(kernel)
        clients = NptlSim(kernel, charge_cpu=False)
        server = ApacheLikeServer(
            kernel, nptl, kernel.fs, listener, workers=workers
        )
        server.start()
        return kernel, nptl, clients, listener, server

    @staticmethod
    def client_gen(kernel, listener, raw_request, responses):
        conn = yield KConnect(listener)
        sent = 0
        while sent < len(raw_request):
            sent += yield KWrite(conn, raw_request[sent:])
        collected = bytearray()
        while True:
            data = yield KRead(conn, 65536)
            if not data:
                break
            collected.extend(data)
        responses.append(bytes(collected))
        conn.close()

    def test_serves_file(self):
        kernel, nptl, clients, listener, server = self.make()
        responses = []
        clients.spawn(self.client_gen(
            kernel, listener,
            b"GET /index.html HTTP/1.0\r\n\r\n", responses,
        ))

        run_sims(kernel, [nptl, clients], done=lambda: bool(responses))
        assert responses and responses[0].startswith(b"HTTP/1.1 200 OK")
        assert server.stats.responses_ok == 1

    def test_404(self):
        kernel, nptl, clients, listener, server = self.make()
        responses = []
        clients.spawn(self.client_gen(
            kernel, listener, b"GET /nope HTTP/1.0\r\n\r\n", responses,
        ))
        run_sims(kernel, [nptl, clients], done=lambda: bool(responses))
        assert responses and responses[0].startswith(b"HTTP/1.1 404")
