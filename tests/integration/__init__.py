"""Test package (absolute+relative imports work under `python -m pytest`)."""
