"""Full-vertical integration: HTTP over app-level TCP over lossy links,
concurrent mixed workloads, cancellation during I/O, failure injection."""

from __future__ import annotations

import pytest

from repro.core.do_notation import do
from repro.core.exceptions import ThreadKilled
from repro.core.sync import Semaphore
from repro.core.syscalls import sys_aio_read, sys_blio, sys_fork, sys_sleep
from repro.http.message import HttpError
from repro.http.server import AppTcpSocketLayer, KernelSocketLayer, WebServer
from repro.runtime.sim_runtime import SimRuntime
from repro.simos.net import DuplexPacketLink
from repro.tcp.socket_api import install_tcp
from repro.tcp.stack import TcpParams, TcpStack, connect_stacks


def make_tcp_world(rt, loss=0.0, seed=0):
    clock = rt.kernel.clock
    link = DuplexPacketLink(
        clock, bandwidth=12.5e6, latency=0.001, loss=loss, seed=seed
    )
    server_stack = TcpStack(clock, "server", TcpParams(), seed=1)
    client_stack = TcpStack(clock, "client", TcpParams(), seed=2)
    connect_stacks(client_stack, server_stack, link)
    return install_tcp(rt.sched, server_stack), install_tcp(rt.sched, client_stack)


class TestHttpOverLossyTcp:
    """The complete paper stack: monadic HTTP server -> sys_tcp -> TCP
    engine -> lossy packet link, with AIO disk reads underneath."""

    def fetch_over_tcp(self, loss, seed=11, n_clients=4):
        rt = SimRuntime(uncaught="store")
        rt.kernel.fs.create_file("page.html", 24_000)
        ssock, csock = make_tcp_world(rt, loss=loss, seed=seed)
        server = WebServer(AppTcpSocketLayer(ssock, port=80), rt.kernel.fs)
        rt.spawn(server.main(), name="server")
        bodies = []

        @do
        def client(i):
            conn = yield csock.connect("server", 80)
            yield csock.send(
                conn, b"GET /page.html HTTP/1.0\r\n\r\n"
            )
            collected = bytearray()
            while True:
                data = yield csock.recv(conn, 65536)
                if not data:
                    break
                collected.extend(data)
            bodies.append(bytes(collected))
            yield csock.close(conn)

        for i in range(n_clients):
            rt.spawn(client(i), name=f"client-{i}")
        rt.run(until=lambda: len(bodies) == n_clients)
        return rt, bodies

    def test_clean_link(self):
        rt, bodies = self.fetch_over_tcp(loss=0.0)
        expected = rt.kernel.fs.open("page.html").content_at(0, 24_000)
        for raw in bodies:
            header, _, body = raw.partition(b"\r\n\r\n")
            assert header.startswith(b"HTTP/1.1 200 OK")
            assert body == expected

    def test_five_percent_loss(self):
        rt, bodies = self.fetch_over_tcp(loss=0.05)
        expected = rt.kernel.fs.open("page.html").content_at(0, 24_000)
        for raw in bodies:
            _header, _, body = raw.partition(b"\r\n\r\n")
            assert body == expected

    def test_disk_cache_and_tcp_compose(self):
        rt, bodies = self.fetch_over_tcp(loss=0.02, n_clients=6)
        # At least one request was served from cache (same file).
        from_server_cache = [b for b in bodies if b]
        assert len(from_server_cache) == 6
        assert rt.kernel.disk.stats.completed >= 1


class TestMixedWorkload:
    """Disk AIO + pipes + timers + TCP, all interleaving on one runtime."""

    def test_everything_at_once(self):
        rt = SimRuntime(uncaught="store")
        rt.kernel.fs.create_file("blob", 256 * 1024)
        handle = rt.kernel.fs.open("blob")
        ssock, csock = make_tcp_world(rt, loss=0.01, seed=5)
        outcomes = {}

        @do
        def disk_reader():
            total = 0
            for i in range(16):
                data = yield sys_aio_read(handle, i * 4096, 4096)
                total += len(data)
            outcomes["disk"] = total

        @do
        def pipe_pair():
            r, w = rt.kernel.make_pipe()

            @do
            def writer():
                yield rt.io.write_all(w, b"p" * 20_000)

            yield sys_fork(writer())
            data = yield rt.io.read_exact(r, 20_000)
            outcomes["pipe"] = len(data)

        @do
        def timer_chain():
            ticks = 0
            for _ in range(10):
                yield sys_sleep(0.01)
                ticks += 1
            outcomes["timer"] = ticks

        @do
        def tcp_echo_server():
            listener = yield ssock.listen(7)
            conn = yield ssock.accept(listener)
            data = yield ssock.recv_exact(conn, 5000)
            yield ssock.send(conn, data)
            yield ssock.close(conn)

        @do
        def tcp_client():
            conn = yield csock.connect("server", 7)
            payload = bytes(i % 251 for i in range(5000))
            yield csock.send(conn, payload)
            echoed = yield csock.recv_exact(conn, 5000)
            outcomes["tcp"] = echoed == payload
            yield csock.close(conn)

        rt.spawn(disk_reader())
        rt.spawn(pipe_pair())
        rt.spawn(timer_chain())
        rt.spawn(tcp_echo_server())
        rt.spawn(tcp_client())
        rt.run(until=lambda: len(outcomes) == 4)
        assert outcomes == {
            "disk": 16 * 4096,
            "pipe": 20_000,
            "timer": 10,
            "tcp": True,
        }


class TestCancellation:
    def test_kill_thread_blocked_on_disk(self):
        rt = SimRuntime(uncaught="store")
        rt.kernel.fs.create_file("f", 64 * 1024)
        handle = rt.kernel.fs.open("f")
        cleanup = []

        @do
        def victim():
            try:
                while True:
                    yield sys_aio_read(handle, 0, 4096)
            finally:
                cleanup.append("ran")

        tcb = rt.spawn(victim())
        rt.run(until=lambda: rt.kernel.disk.stats.completed >= 2)
        rt.sched.kill(tcb)
        rt.run(until=lambda: tcb.state in ("done", "failed"))
        assert tcb.state == "failed"
        assert isinstance(tcb.error, ThreadKilled)
        assert cleanup == ["ran"]

    def test_kill_does_not_disturb_others(self):
        rt = SimRuntime(uncaught="store")
        survivors = []

        @do
        def victim():
            yield sys_sleep(100.0)

        @do
        def survivor(i):
            yield sys_sleep(0.5)
            survivors.append(i)

        victim_tcb = rt.spawn(victim())
        for i in range(5):
            rt.spawn(survivor(i))
        rt.sched.kill(victim_tcb)
        rt.run(until=lambda: len(survivors) == 5)
        assert sorted(survivors) == list(range(5))


class TestServerErrorPaths:
    def test_http_error_thread_isolated(self):
        """One client sending garbage must not affect another mid-flight."""
        rt = SimRuntime(uncaught="store")
        rt.kernel.fs.create_file("ok.html", 100)
        listener = rt.kernel.net.listen()
        server = WebServer(
            KernelSocketLayer(rt.io, rt.kernel.net, listener=listener),
            rt.kernel.fs,
        )
        rt.spawn(server.main())
        results = {}

        @do
        def bad_client():
            conn = yield rt.io.connect(listener)
            yield rt.io.write_all(conn, b"\x00\x01GARBAGE\r\n\r\n")
            data = yield rt.io.read(conn, 4096)
            results["bad"] = bytes(data)
            yield rt.io.close(conn)

        @do
        def good_client():
            conn = yield rt.io.connect(listener)
            yield rt.io.write_all(conn, b"GET /ok.html HTTP/1.0\r\n\r\n")
            collected = bytearray()
            while True:
                data = yield rt.io.read(conn, 4096)
                if not data:
                    break
                collected.extend(data)
            results["good"] = bytes(collected)
            yield rt.io.close(conn)

        rt.spawn(bad_client())
        rt.spawn(good_client())
        rt.run(until=lambda: len(results) == 2)
        assert results["bad"].startswith(b"HTTP/1.1 4") or results[
            "bad"
        ].startswith(b"HTTP/1.1 5")
        assert results["good"].startswith(b"HTTP/1.1 200")

    def test_blio_failure_surfaces_as_http_500_path(self):
        """A blocking-pool failure propagates as a monadic exception that
        the per-client handler can turn into a response."""
        rt = SimRuntime(uncaught="store")

        @do
        def worker():
            try:
                yield sys_blio(lambda: (_ for _ in ()).throw(OSError("disk")))
            except OSError as exc:
                return f"handled {exc}"

        tcb = rt.spawn(worker())
        rt.run()
        assert tcb.result == "handled disk"

    def test_semaphore_bounds_concurrent_aio(self):
        """Resource-aware pattern: a semaphore capping in-flight disk I/O."""
        rt = SimRuntime()
        rt.kernel.fs.create_file("f", 10 * 1024 * 1024)
        handle = rt.kernel.fs.open("f")
        gate = Semaphore(4)
        done = []

        @do
        def reader(i):
            yield gate.acquire()
            try:
                yield sys_aio_read(handle, i * 4096, 4096)
            finally:
                yield gate.release()
            done.append(i)

        for i in range(32):
            rt.spawn(reader(i))
        rt.run()
        assert len(done) == 32
        assert rt.kernel.disk.stats.max_queue_depth <= 4
