"""Batched accepts: one loop wakeup drains the whole listen queue (up to
the batch cap) instead of paying a scheduler round trip per connection."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.core.do_notation import do
from repro.runtime.live_runtime import LiveRuntime
from repro.runtime.sim_runtime import SimRuntime


@pytest.fixture
def rt():
    runtime = LiveRuntime()
    yield runtime
    runtime.shutdown()


def _preconnect(port: int, count: int) -> list[socket.socket]:
    """Blocking connects that complete against the backlog, before any
    accept runs — a ready-made burst in the kernel queue."""
    return [
        socket.create_connection(("127.0.0.1", port), timeout=5)
        for _ in range(count)
    ]


class TestLiveAcceptBatch:
    def test_burst_drained_in_one_batch(self, rt):
        listener = rt.make_listener()
        port = listener.getsockname()[1]
        clients = _preconnect(port, 6)
        batches = []

        @do
        def acceptor():
            batch = yield rt.io.accept_many(listener, 16)
            batches.append(batch)
            for conn in batch:
                yield rt.io.close(conn)

        rt.spawn(acceptor())
        rt.run()
        listener.close()
        for sock in clients:
            sock.close()
        assert len(batches) == 1, "burst should drain in a single wakeup"
        assert len(batches[0]) == 6

    def test_batch_cap_is_respected(self, rt):
        listener = rt.make_listener()
        port = listener.getsockname()[1]
        clients = _preconnect(port, 6)
        batches = []

        @do
        def acceptor():
            while sum(len(batch) for batch in batches) < 6:
                batch = yield rt.io.accept_many(listener, 4)
                batches.append(batch)
                for conn in batch:
                    yield rt.io.close(conn)

        rt.spawn(acceptor())
        rt.run()
        listener.close()
        for sock in clients:
            sock.close()
        assert [len(batch) for batch in batches] == [4, 2]

    def test_parks_on_empty_queue_then_wakes(self, rt):
        listener = rt.make_listener()
        port = listener.getsockname()[1]
        batches = []

        @do
        def acceptor():
            batch = yield rt.io.accept_many(listener, 8)
            batches.append(batch)
            for conn in batch:
                yield rt.io.close(conn)

        def late_connect():
            sock = socket.create_connection(("127.0.0.1", port), timeout=5)
            sock.close()

        rt.spawn(acceptor())
        timer = threading.Timer(0.05, late_connect)
        timer.start()
        rt.run(until=lambda: bool(batches), idle_timeout=5.0)
        timer.join()
        listener.close()
        assert len(batches) == 1
        assert len(batches[0]) == 1

    def test_limit_validation(self, rt):
        listener = rt.make_listener()
        with pytest.raises(ValueError):
            rt.io.accept_many(listener, 0)
        listener.close()


class TestSimAcceptBatch:
    def test_generic_drain_over_sim_backend(self):
        """NetIO's batch path works on backends without nb_accept_batch
        (the simulated kernel): repeated nb_accept inside one nbio turn."""
        rt = SimRuntime()
        listener = rt.kernel.net.listen()
        batches = []
        echoed = []

        @do
        def server():
            batch = yield rt.io.accept_many(listener, 8)
            batches.append(batch)
            for conn in batch:
                data = yield rt.io.read_exact(conn, 2)
                echoed.append(data)
                yield rt.io.close(conn)

        @do
        def client(tag):
            conn = yield rt.io.connect(listener)
            yield rt.io.write_all(conn, tag)

        rt.spawn(server())
        for index in range(3):
            rt.spawn(client(f"c{index}".encode()))
        rt.run()
        assert sum(len(batch) for batch in batches) == 3
        assert sorted(echoed) == [b"c0", b"c1", b"c2"]
