"""The public construction facade (repro.api) and the AppContext
factory contract."""

from __future__ import annotations

import pytest

from repro.api import (
    AppContext,
    build_cache,
    build_gateway,
    build_kv,
    build_server,
)
from repro.http.blocking_client import BlockingHttpClient
from repro.runtime.cluster import ClusterServer, _takes_context
from repro.runtime.live_runtime import LiveRuntime, make_listener


@pytest.fixture
def rt():
    runtime = LiveRuntime(uncaught="store")
    yield runtime
    runtime.shutdown()


class TestContextDetection:
    def test_single_required_parameter_is_context_style(self):
        assert _takes_context(lambda ctx: None)

        def factory(ctx, extra=1):
            return None

        assert _takes_context(factory)

    def test_legacy_shapes_are_not(self):
        assert not _takes_context(lambda rt, listener: None)
        assert not _takes_context(lambda rt, listener, mesh: None)
        assert not _takes_context(lambda *args: None)
        assert not _takes_context(lambda: None)


class TestBuilders:
    def test_build_server_with_explicit_keywords(self, rt):
        listener = make_listener()
        server = build_server(rt=rt, listener=listener,
                              site={"x": b"content"})
        assert server.cache.get("x") == b"content"
        listener.close()

    def test_builders_require_a_context_or_both_keywords(self, rt):
        with pytest.raises(TypeError):
            build_server(rt=rt)  # no listener, no ctx
        with pytest.raises(TypeError):
            build_server()

    def test_build_kv_reads_knobs_from_the_context(self, rt):
        listener = make_listener()
        ctx = AppContext(rt=rt, listener=listener, timers=rt.timers,
                         replication=1, write_quorum=1)
        app = build_kv(ctx=ctx)
        assert app.kv is not None
        assert app.kv.replication == 1
        listener.close()

    def test_explicit_keyword_overrides_the_context(self, rt):
        listener = make_listener()
        other = make_listener()
        ctx = AppContext(rt=rt, listener=listener)
        server = build_server(ctx=ctx, listener=other, site={})
        assert server.layer.listener is other
        listener.close()
        other.close()

    def test_build_gateway_facade(self, rt):
        listener = make_listener()
        upstream = make_listener()
        server = build_gateway(
            rt=rt, listener=listener,
            routes=[{"prefix": "/", "upstreams": [upstream.getsockname()]}],
        )
        assert server.gateway.routes[0].prefix == "/"
        assert callable(server.extra_stats)
        listener.close()
        upstream.close()

    def test_build_cache_facade(self, rt):
        class NullStore:
            pass

        listener = make_listener()
        frontend = build_cache(rt=rt, listener=listener, store=NullStore())
        assert frontend is not None
        listener.close()


class TestClusterContextFactory:
    def test_cluster_passes_an_app_context(self):
        # A one-parameter factory gets the shard's AppContext; the site
        # content proves shard identity and shape arrived through it.
        def app_factory(ctx):
            body = f"shard {ctx.shard_index} of {ctx.shards}".encode()
            assert ctx.rt is not None
            assert ctx.timers is ctx.rt.timers
            assert ctx.mesh is None  # mesh not configured
            assert ctx.cache_listener is None
            return build_server(ctx=ctx, site={"whoami": body})

        cluster = ClusterServer(app_factory, shards=1, grace=0.1)
        cluster.start()
        try:
            with BlockingHttpClient(cluster.port) as client:
                status, body = client.get("whoami")
            assert status.endswith("200 OK")
            assert body == b"shard 0 of 1"
        finally:
            cluster.stop()
