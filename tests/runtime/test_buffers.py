"""The pooled receive-buffer subsystem: lease/release discipline.

Unit level exercises :class:`~repro.runtime.buffers.BufferPool` directly;
the monadic level drives :meth:`NetIO.read_pooled` against fake backends
to pin the leak-freedom claims — a lease is released on EOF, on
connection error, while parked for readiness (idle keep-alive pins zero
buffers), and under abandonment (``GeneratorExit``).
"""

from __future__ import annotations

import socket

from repro.core.do_notation import do
from repro.core.scheduler import run_threads
from repro.runtime.buffers import BufferPool
from repro.runtime.io_api import NetIO
from repro.runtime.live_runtime import LiveRuntime
from repro.simos.errors import WOULD_BLOCK


class TestBufferPool:
    def test_lease_allocates_then_reuses(self):
        pool = BufferPool(buffer_bytes=128)
        lease = pool.lease()
        assert len(lease.data) == 128
        lease.release()
        again = pool.lease()
        again.release()
        stats = pool.stats()
        assert stats["allocations"] == 1
        assert stats["leases"] == 2
        assert stats["reuses"] == 1
        assert stats["in_use"] == 0
        assert stats["pooled"] == 1

    def test_release_is_idempotent(self):
        pool = BufferPool(buffer_bytes=64)
        lease = pool.lease()
        lease.release()
        lease.release()
        assert pool.stats()["releases"] == 1
        assert pool.pooled == 1

    def test_data_detached_after_release(self):
        pool = BufferPool(buffer_bytes=64)
        lease = pool.lease()
        lease.release()
        assert lease.data is None  # use-after-release fails loudly

    def test_high_water_tracks_concurrent_leases(self):
        pool = BufferPool(buffer_bytes=32)
        leases = [pool.lease() for _ in range(5)]
        assert pool.stats()["high_water"] == 5
        for lease in leases:
            lease.release()
        assert pool.stats()["in_use"] == 0
        assert pool.stats()["high_water"] == 5

    def test_free_list_is_bounded(self):
        pool = BufferPool(buffer_bytes=32, max_pooled=2)
        leases = [pool.lease() for _ in range(4)]
        for lease in leases:
            lease.release()
        stats = pool.stats()
        assert stats["pooled"] == 2
        assert stats["discarded"] == 2

    def test_release_with_exported_view(self):
        # ``del bytearray[:n]``-style invalidation aside, the real
        # hazard is returning a buffer to the pool while a memoryview
        # still pins it; release must drop tracked views first.
        pool = BufferPool(buffer_bytes=64)
        lease = pool.lease()
        view = lease.view(10)
        view[:3] = b"abc"
        lease.release()  # must not raise BufferError
        assert pool.pooled == 1

    def test_buffers_are_reused_not_reallocated(self):
        pool = BufferPool(buffer_bytes=64)
        lease = pool.lease()
        first = id(lease.data)
        lease.release()
        again = pool.lease()
        assert id(again.data) == first
        again.release()


class _RecvIntoBackend:
    """Feeds scripted results through ``nb_recv_into``; records how many
    syscalls ran and tolerates readiness parks."""

    def __init__(self, script):
        #: Each entry: bytes to deliver, WOULD_BLOCK, or an exception.
        self.script = list(script)
        self.recv_into_calls = 0
        self.waits = 0

    def nb_recv_into(self, fd, buf):
        self.recv_into_calls += 1
        item = self.script.pop(0)
        if isinstance(item, BaseException):
            raise item
        if item is WOULD_BLOCK:
            return WOULD_BLOCK
        buf[: len(item)] = item
        return len(item)

    def nb_epoll_wait(self, fd, events):
        self.waits += 1
        return True


class _PlainReadBackend:
    """No ``nb_recv_into``: read_pooled must fall back through read()."""

    def __init__(self, payload):
        self.payload = payload
        self.read_calls = 0

    def nb_read(self, fd, nbytes):
        self.read_calls += 1
        data, self.payload = self.payload[:nbytes], self.payload[nbytes:]
        return data


def _run(comp):
    run_threads([comp])


class TestReadPooled:
    def test_recv_lands_in_leased_buffer(self):
        backend = _RecvIntoBackend([b"hello world"])
        io = NetIO(backend)
        pool = BufferPool(buffer_bytes=64)
        results = []

        @do
        def reader():
            lease, count = yield io.read_pooled("fd", pool)
            results.append(bytes(lease.data[:count]))
            lease.release()

        _run(reader())
        assert results == [b"hello world"]
        assert backend.recv_into_calls == 1
        assert pool.stats()["in_use"] == 0
        assert pool.stats()["allocations"] == 1

    def test_lease_released_while_parked(self):
        # The whole point of lease-around-park: an idle connection
        # waiting for readiness holds NO buffer.  The fake backend
        # reports WOULD_BLOCK, the real fd stays unreadable, so the
        # reader parks on epoll — with zero buffers pinned.
        backend = _RecvIntoBackend([WOULD_BLOCK, b"late"])
        io = NetIO(backend)
        pool = BufferPool(buffer_bytes=64)
        rt = LiveRuntime(uncaught="store")
        left, right = socket.socketpair()
        right.setblocking(False)
        try:
            results = []

            @do
            def reader():
                lease, count = yield io.read_pooled(right, pool)
                results.append(bytes(lease.data[:count]))
                lease.release()

            rt.spawn(reader(), name="reader")
            rt.run(until=lambda: backend.recv_into_calls >= 1,
                   idle_timeout=5.0)
            # Parked for readiness now: the lease went back to the pool.
            assert not results
            assert pool.stats()["in_use"] == 0
            left.send(b"late")  # wake the park; the fake delivers
            rt.run(until=lambda: bool(results), idle_timeout=5.0)
            assert results == [b"late"]
            assert backend.recv_into_calls == 2
            assert pool.stats()["in_use"] == 0
            assert pool.stats()["leases"] == 2  # re-leased after the park
        finally:
            left.close()
            right.close()
            rt.shutdown()

    def test_lease_released_on_connection_error(self):
        backend = _RecvIntoBackend([ConnectionResetError("gone")])
        io = NetIO(backend)
        pool = BufferPool(buffer_bytes=64)
        failures = []

        @do
        def reader():
            try:
                yield io.read_pooled("fd", pool)
            except ConnectionResetError as exc:
                failures.append(exc)

        _run(reader())
        assert len(failures) == 1
        assert pool.stats()["in_use"] == 0
        assert pool.pooled == 1  # the buffer went back, not leaked

    def test_lease_released_on_base_exception(self):
        # The guard is ``except BaseException`` for a reason: whatever
        # tears through the read while the lease is held (GeneratorExit
        # under abandonment, KeyboardInterrupt, ...) must still return
        # the buffer to the pool — even when the scheduler propagates
        # it raw instead of delivering it monadically.
        class _Teardown(BaseException):
            pass

        backend = _RecvIntoBackend([_Teardown()])
        io = NetIO(backend)
        pool = BufferPool(buffer_bytes=64)
        failures = []

        @do
        def reader():
            try:
                yield io.read_pooled("fd", pool)
            except _Teardown as exc:
                failures.append(exc)

        _run(reader())
        assert len(failures) == 1
        assert pool.stats()["in_use"] == 0
        assert pool.pooled == 1

    def test_fallback_without_nb_recv_into(self):
        backend = _PlainReadBackend(b"fallback bytes")
        io = NetIO(backend)
        pool = BufferPool(buffer_bytes=64)
        results = []

        @do
        def reader():
            lease, count = yield io.read_pooled("fd", pool)
            results.append(bytes(lease.data[:count]))
            lease.release()

        _run(reader())
        assert results == [b"fallback bytes"]
        assert backend.read_calls == 1
        assert pool.stats()["in_use"] == 0

    def test_eof_returns_zero_count_with_live_lease(self):
        backend = _RecvIntoBackend([b""])
        io = NetIO(backend)
        pool = BufferPool(buffer_bytes=64)
        results = []

        @do
        def reader():
            lease, count = yield io.read_pooled("fd", pool)
            results.append(count)
            lease.release()

        _run(reader())
        assert results == [0]
        assert pool.stats()["in_use"] == 0


class TestReadInto:
    def test_fills_caller_buffer(self):
        backend = _RecvIntoBackend([b"abc"])
        io = NetIO(backend)
        buf = bytearray(16)
        results = []

        @do
        def reader():
            count = yield io.read_into("fd", buf)
            results.append(count)

        _run(reader())
        assert results == [3]
        assert bytes(buf[:3]) == b"abc"

    def test_fallback_copies_through_read(self):
        backend = _PlainReadBackend(b"xyz")
        io = NetIO(backend)
        buf = bytearray(8)
        results = []

        @do
        def reader():
            count = yield io.read_into("fd", buf)
            results.append(count)

        _run(reader())
        assert results == [3]
        assert bytes(buf[:3]) == b"xyz"
