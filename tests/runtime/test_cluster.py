"""Multi-process sharded serving: accept sharding, crash respawn,
graceful shutdown, stats aggregation — over real sockets and real forks."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core.smp import SmpScheduler
from repro.http.blocking_client import BlockingHttpClient
from repro.http.server import build_live_server
from repro.runtime.cluster import ClusterConfig, ClusterServer, build_runtime
from repro.runtime.live_runtime import LiveRuntime

SITE = {"index.html": b"<html>cluster under test</html>"}


def app_factory(rt, listener):
    return build_live_server(rt, listener, site=SITE)


def get(port: int, path: str = "index.html",
        client: BlockingHttpClient | None = None):
    """One keep-alive GET; returns (status_line, body, client)."""
    if client is None:
        client = BlockingHttpClient(port)
    status, body = client.get(path)
    return status, body, client


@pytest.fixture
def cluster():
    server = ClusterServer(app_factory, shards=2, grace=0.1)
    server.start()
    yield server
    server.stop()


class TestServing:
    def test_serves_http_from_any_shard(self, cluster):
        status, body, client = get(cluster.port)
        assert status.endswith("200 OK")
        assert body == SITE["index.html"]
        client.close()

    def test_both_workers_accept_connections(self, cluster):
        # SO_REUSEPORT hashes per source port; distinct connections land on
        # both shards with overwhelming probability well before the cap.
        clients = []
        try:
            for _ in range(64):
                status, _, client = get(cluster.port)
                assert status.endswith("200 OK")
                clients.append(client)
                accepted = [
                    worker["accepted"]
                    for worker in cluster.stats()["workers"] if worker
                ]
                if len(accepted) == 2 and all(accepted):
                    break
            stats = cluster.stats()
            accepted = [w["accepted"] for w in stats["workers"] if w]
            assert len(accepted) == 2
            assert all(count > 0 for count in accepted), accepted
            assert sum(count for count in accepted) == len(clients)
            assert stats["aggregate"]["requests"] == len(clients)
        finally:
            for client in clients:
                client.close()

    def test_keepalive_requests_counted_once_per_request(self, cluster):
        status, _, client = get(cluster.port)
        assert status.endswith("200 OK")
        for _ in range(4):
            status, _, _ = get(cluster.port, client=client)
            assert status.endswith("200 OK")
        stats = cluster.stats()["aggregate"]
        assert stats["accepted"] == 1
        assert stats["requests"] == 5
        client.close()


class TestCrashRespawn:
    def test_crashed_worker_is_respawned(self, cluster):
        pids_before = cluster.worker_pids()
        assert all(pid is not None for pid in pids_before)
        cluster.crash_worker(0)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            pids = cluster.worker_pids()
            if (cluster.respawns >= 1 and all(p is not None for p in pids)
                    and pids != pids_before):
                break
            time.sleep(0.05)
        assert cluster.respawns >= 1
        pids_after = cluster.worker_pids()
        assert all(pid is not None for pid in pids_after)
        assert pids_after != pids_before
        # The cluster still serves, and the replacement answers stats.
        status, body, client = get(cluster.port)
        assert status.endswith("200 OK")
        assert body == SITE["index.html"]
        client.close()
        assert cluster.stats()["aggregate"]["workers_reporting"] == 2


class TestReload:
    def test_rolling_reload_keeps_serving(self):
        """Zero-downtime restart: the port stays up, every shard is
        replaced, and keep-alive traffic keeps completing while shards
        roll one at a time."""
        cluster = ClusterServer(app_factory, shards=2, grace=0.1)
        cluster.start()
        stop = threading.Event()
        successes: list[float] = []
        bad_statuses: list[str] = []

        def hammer():
            client = None
            while not stop.is_set():
                try:
                    if client is None:
                        client = BlockingHttpClient(
                            cluster.port, timeout=2.0
                        )
                    status, body = client.get("index.html")
                    if status.endswith("200 OK") and body == SITE[
                        "index.html"
                    ]:
                        successes.append(time.monotonic())
                    else:
                        bad_statuses.append(status)
                except OSError:
                    # The keep-alive connection was pinned to the shard
                    # being rolled: reconnect (the kernel re-hashes onto
                    # a live listener).
                    if client is not None:
                        client.close()
                    client = None
            if client is not None:
                client.close()

        thread = threading.Thread(target=hammer, daemon=True)
        thread.start()
        try:
            deadline = time.monotonic() + 5
            while not successes and time.monotonic() < deadline:
                time.sleep(0.01)
            assert successes, "no traffic before the roll"
            pids_before = cluster.worker_pids()
            roll_started = time.monotonic()
            new_pids = cluster.reload()
            roll_ended = time.monotonic()
            # Traffic completed *during* the roll, not only around it.
            during = [
                stamp for stamp in successes
                if roll_started <= stamp <= roll_ended
            ]
            assert during, "no request completed during the rolling restart"
        finally:
            stop.set()
            thread.join(timeout=5)
            cluster.stop()
        assert not bad_statuses, bad_statuses
        # Every shard was replaced, same port, same shard count.
        assert len(new_pids) == 2
        assert set(new_pids).isdisjoint(set(pids_before))

    def test_reload_then_stats_and_serving(self):
        cluster = ClusterServer(app_factory, shards=2, grace=0.1)
        cluster.start()
        try:
            port_before = cluster.port
            cluster.reload()
            assert cluster.port == port_before
            status, body, client = get(cluster.port)
            assert status.endswith("200 OK")
            assert body == SITE["index.html"]
            client.close()
            stats = cluster.stats()
            assert stats["aggregate"]["workers_reporting"] == 2
        finally:
            cluster.stop()


class TestGracefulShutdown:
    def test_stop_closes_port_and_exits_cleanly(self):
        cluster = ClusterServer(app_factory, shards=2, grace=0.1,
                                respawn=False)
        cluster.start()
        workers = list(cluster._workers)
        status, _, client = get(cluster.port)
        assert status.endswith("200 OK")
        client.close()
        cluster.stop()
        assert all(handle.process.exitcode == 0 for handle in workers), [
            handle.process.exitcode for handle in workers
        ]
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", cluster.port), timeout=1)

    def test_stop_is_idempotent_and_start_once(self):
        cluster = ClusterServer(app_factory, shards=1, grace=0.1)
        cluster.start()
        with pytest.raises(RuntimeError):
            cluster.start()
        cluster.stop()
        cluster.stop()


class TestOverloadStats:
    def test_saturation_surfaced_through_control_protocol(self):
        def capped_factory(rt, listener):
            return build_live_server(
                rt, listener, site=SITE, max_connections=8
            )

        cluster = ClusterServer(capped_factory, shards=2, grace=0.1)
        cluster.start()
        try:
            status, _, client = get(cluster.port)
            assert status.endswith("200 OK")
            stats = cluster.stats()
            for worker in stats["workers"]:
                assert worker is not None
                assert worker["capacity"] == 8
                assert worker["shed"] == 0
                assert 0.0 <= worker["saturation"] <= 1.0
                assert worker["poller"] in ("epoll", "select")
                assert worker["poller_ctl"] >= 0
            aggregate = stats["aggregate"]
            assert aggregate["active"] == 1
            assert aggregate["shed"] == 0
            assert aggregate["saturation_max"] == 1 / 8
            client.close()
        finally:
            cluster.stop()

    def test_uncapped_shards_report_null_saturation(self, cluster):
        stats = cluster.stats()
        for worker in stats["workers"]:
            assert worker is not None
            assert worker["capacity"] is None
            assert worker["saturation"] is None
        assert stats["aggregate"]["saturation_max"] is None


class TestConfig:
    def test_shards_validation(self):
        with pytest.raises(ValueError):
            ClusterServer(app_factory, shards=0)

    def test_select_poller_cluster_serves(self):
        # The portable fallback loop, end to end through the cluster.
        cluster = ClusterServer(
            app_factory, shards=1, grace=0.1, poller="select"
        )
        cluster.start()
        try:
            status, body, client = get(cluster.port)
            assert status.endswith("200 OK")
            assert body == SITE["index.html"]
            client.close()
            workers = cluster.stats()["workers"]
            assert workers[0]["poller"] == "select"
        finally:
            cluster.stop()

    def test_bad_scheduler_kind(self):
        with pytest.raises(ValueError):
            build_runtime(ClusterConfig(scheduler="magic"))

    def test_build_runtime_smp(self):
        rt = build_runtime(ClusterConfig(scheduler="smp", smp_workers=3))
        try:
            assert isinstance(rt, LiveRuntime)
            assert isinstance(rt.sched, SmpScheduler)
            assert len(rt.sched.workers) == 3
        finally:
            rt.shutdown()

    def test_smp_sharded_cluster_serves(self):
        # The full stack: process shards whose runtimes wrap SmpScheduler
        # (per-worker queues + stealing inside each shard).
        cluster = ClusterServer(
            app_factory, shards=2, scheduler="smp", smp_workers=2, grace=0.1
        )
        cluster.start()
        try:
            clients = []
            for _ in range(8):
                status, body, client = get(cluster.port)
                assert status.endswith("200 OK")
                assert body == SITE["index.html"]
                clients.append(client)
            for client in clients:
                status, _, _ = get(cluster.port, client=client)
                assert status.endswith("200 OK")
                client.close()
            assert cluster.stats()["aggregate"]["requests"] == 16
        finally:
            cluster.stop()
