"""The live runtime: real sockets, real timers, the real blocking pool.

These tests exercise the paper's architecture against the actual OS —
the monadic server code is byte-identical to what runs on the simulator.
"""

from __future__ import annotations

import socket
import time

import pytest

from repro.core.do_notation import do
from repro.core.syscalls import sys_blio, sys_fork, sys_now, sys_sleep
from repro.runtime.live_runtime import LiveRuntime


@pytest.fixture
def rt():
    runtime = LiveRuntime()
    yield runtime
    runtime.shutdown()


class TestTimers:
    def test_sleep_takes_real_time(self, rt):
        @do
        def sleeper():
            start = yield sys_now()
            yield sys_sleep(0.05)
            end = yield sys_now()
            return end - start

        tcb = rt.spawn(sleeper())
        rt.run()
        assert tcb.result >= 0.045

    def test_sleepers_wake_in_order(self, rt):
        log = []

        @do
        def sleeper(delay, tag):
            yield sys_sleep(delay)
            log.append(tag)

        rt.spawn(sleeper(0.06, "late"))
        rt.spawn(sleeper(0.02, "early"))
        rt.run()
        assert log == ["early", "late"]


class TestBlockingPool:
    def test_blio_runs_off_loop(self, rt):
        @do
        def worker():
            value = yield sys_blio(lambda: sum(range(1000)))
            return value

        tcb = rt.spawn(worker())
        rt.run()
        assert tcb.result == 499500

    def test_blio_sleep_does_not_stall_loop(self, rt):
        """A blocking sleep in the pool must not delay monadic timers."""
        log = []

        @do
        def blocker():
            yield sys_blio(lambda: time.sleep(0.2))
            log.append("blocker")

        @do
        def quick():
            yield sys_sleep(0.03)
            log.append("quick")

        rt.spawn(blocker())
        rt.spawn(quick())
        rt.run()
        assert log == ["quick", "blocker"]


class TestRealSockets:
    def test_echo_server_over_localhost(self, rt):
        listener = rt.make_listener()
        port = listener.getsockname()[1]
        replies = []

        @do
        def handle_client(conn):
            data = yield rt.io.read(conn, 4096)
            while data:
                yield rt.io.write_all(conn, data)
                data = yield rt.io.read(conn, 4096)
            yield rt.io.close(conn)

        @do
        def server(n_clients):
            for _ in range(n_clients):
                conn = yield rt.io.accept(listener)
                yield sys_fork(handle_client(conn))

        @do
        def client(i):
            conn = yield rt.io.connect(("127.0.0.1", port))
            message = f"hello-{i}".encode()
            yield rt.io.write_all(conn, message)
            reply = yield rt.io.read_exact(conn, len(message))
            replies.append(reply)
            yield rt.io.close(conn)

        n = 5
        rt.spawn(server(n))
        for i in range(n):
            rt.spawn(client(i))
        rt.run(until=lambda: len(replies) == n, idle_timeout=5.0)
        listener.close()
        assert sorted(replies) == sorted(f"hello-{i}".encode() for i in range(n))

    def test_bulk_transfer(self, rt):
        listener = rt.make_listener()
        port = listener.getsockname()[1]
        payload = b"x" * (256 * 1024)
        received = []

        @do
        def server():
            conn = yield rt.io.accept(listener)
            data = yield rt.io.read_exact(conn, len(payload))
            received.append(data)
            yield rt.io.close(conn)

        @do
        def client():
            conn = yield rt.io.connect(("127.0.0.1", port))
            yield rt.io.write_all(conn, payload)
            yield rt.io.close(conn)

        rt.spawn(server())
        rt.spawn(client())
        rt.run(until=lambda: bool(received), idle_timeout=5.0)
        listener.close()
        assert received == [payload]

    def test_many_concurrent_clients(self, rt):
        listener = rt.make_listener()
        port = listener.getsockname()[1]
        done = []

        @do
        def handle_client(conn):
            data = yield rt.io.read(conn, 1024)
            yield rt.io.write_all(conn, data[::-1])
            yield rt.io.close(conn)

        @do
        def acceptor():
            while True:
                conn = yield rt.io.accept(listener)
                yield sys_fork(handle_client(conn))

        @do
        def client(i):
            conn = yield rt.io.connect(("127.0.0.1", port))
            msg = f"message-{i:03d}".encode()
            yield rt.io.write_all(conn, msg)
            reply = yield rt.io.read_exact(conn, len(msg))
            assert reply == msg[::-1]
            done.append(i)
            yield rt.io.close(conn)

        rt.spawn(acceptor())
        count = 30
        for i in range(count):
            rt.spawn(client(i))
        rt.run(until=lambda: len(done) == count, idle_timeout=10.0)
        listener.close()
        assert sorted(done) == list(range(count))
