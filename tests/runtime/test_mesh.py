"""Mesh framing and data-plane edge cases, over real sockets.

Two :class:`MeshNode` ends run in one :class:`LiveRuntime` (both sets of
descriptors in one poller — the mesh is ordinary monadic I/O), plus raw
"fake peer" endpoints for the failure scenarios: partial reads mid-frame,
peer disconnect mid-call, timeouts, and fan-out with a dead peer.
"""

from __future__ import annotations

import socket as socket_mod
import struct
import time

import pytest

from repro.core.do_notation import do
from repro.core.monad import pure
from repro.core.syscalls import sys_sleep
from repro.runtime.live_runtime import LiveRuntime
from repro.runtime.mesh import (
    KIND_REPLY,
    KIND_REQUEST,
    AdaptiveFlushCap,
    MeshNode,
    MeshPeerDown,
    MeshRemoteError,
    MeshTimeout,
)

_LEN = struct.Struct("!I")
_HEAD = struct.Struct("!BQ")


def frame_bytes(kind: int, request_id: int, body: bytes) -> bytes:
    payload = _HEAD.pack(kind, request_id) + body
    return _LEN.pack(len(payload)) + payload


@pytest.fixture
def rt():
    runtime = LiveRuntime(uncaught="store")
    yield runtime
    runtime.shutdown()


def echo_handler(body):
    return pure(b"echo:" + body)


def make_pair(rt, handler_a=echo_handler, handler_b=echo_handler, **kwargs):
    """Two mesh nodes, both served on one runtime."""
    listener_a = rt.make_listener()
    listener_b = rt.make_listener()
    peers = {
        0: ("127.0.0.1", listener_a.getsockname()[1]),
        1: ("127.0.0.1", listener_b.getsockname()[1]),
    }
    node_a = MeshNode(0, rt.io, listener_a, peers, handler=handler_a,
                      **kwargs)
    node_b = MeshNode(1, rt.io, listener_b, peers, handler=handler_b,
                      **kwargs)
    rt.spawn(node_a.serve(), name="mesh-a")
    rt.spawn(node_b.serve(), name="mesh-b")
    return node_a, node_b


class TestCalls:
    def test_round_trip_and_persistent_link(self, rt):
        node_a, node_b = make_pair(rt)
        replies = []

        @do
        def caller():
            first = yield node_a.call(1, b"one")
            second = yield node_a.call(1, b"two")
            replies.append((first, second))

        rt.spawn(caller())
        rt.run(until=lambda: bool(replies), idle_timeout=5.0)
        assert replies == [(b"echo:one", b"echo:two")]
        # Lazily dialed once, then reused: one persistent link.
        assert node_a.connected_peers() == 1
        assert node_a.stats.calls == 2
        assert node_b.stats.served == 2

    def test_cast_is_one_way(self, rt):
        # A cast runs the remote handler but sends no reply frame: the
        # server's served counter moves, the client's pending map never
        # grows, and a follow-up call on the same link still works.
        seen = []

        def recording(body):
            seen.append(body)
            return pure(b"ignored")

        node_a, node_b = make_pair(rt, handler_b=recording)
        done = []

        @do
        def caller():
            yield node_a.cast(1, b"fire-and-forget")
            reply = yield node_a.call(1, b"sync")
            done.append(reply)

        rt.spawn(caller())
        rt.run(until=lambda: bool(done), idle_timeout=5.0)
        assert seen == [b"fire-and-forget", b"sync"]
        assert done == [b"ignored"]
        assert node_a.stats.casts == 1
        assert node_b.stats.served == 2

    def test_self_call_short_circuits(self, rt):
        node_a, _node_b = make_pair(rt)
        replies = []

        @do
        def caller():
            reply = yield node_a.call(0, b"me")
            replies.append(reply)

        rt.spawn(caller())
        rt.run(until=lambda: bool(replies), idle_timeout=5.0)
        assert replies == [b"echo:me"]
        assert node_a.connected_peers() == 0  # no socket for self-calls

    def test_concurrent_calls_multiplex_one_link(self, rt):
        # Slow replies out of order: request ids must demultiplex them.
        @do
        def staggered(body):
            delay = 0.05 if body == b"0" else 0.005
            yield sys_sleep(delay)
            return b"r:" + body

        node_a, _node_b = make_pair(rt, handler_b=staggered)
        results = {}

        @do
        def caller(i):
            reply = yield node_a.call(1, str(i).encode())
            results[i] = reply

        count = 8
        for i in range(count):
            rt.spawn(caller(i))
        rt.run(until=lambda: len(results) == count, idle_timeout=5.0)
        assert results == {i: b"r:" + str(i).encode() for i in range(count)}
        assert node_a.connected_peers() == 1

    def test_missing_handler_fails_fast_not_timeout(self, rt):
        # A shard without a mesh handler (OSError-derived failure) must
        # answer with an error reply, not strand the caller until its
        # timeout.
        node_a, _node_b = make_pair(rt, handler_b=None)
        outcome = []

        @do
        def caller():
            try:
                yield node_a.call(1, b"x", timeout=10.0)
            except MeshRemoteError as exc:
                outcome.append(exc)

        started = time.monotonic()
        rt.spawn(caller())
        rt.run(until=lambda: bool(outcome), idle_timeout=10.0)
        assert "no mesh handler" in str(outcome[0])
        assert time.monotonic() - started < 5.0
        assert node_a.stats.timeouts == 0

    def test_remote_handler_error_surfaces(self, rt):
        @do
        def broken(body):
            yield sys_sleep(0)
            raise ValueError("kaboom")

        node_a, _node_b = make_pair(rt, handler_b=broken)
        outcome = []

        @do
        def caller():
            try:
                yield node_a.call(1, b"x")
            except MeshRemoteError as exc:
                outcome.append(exc)

        rt.spawn(caller())
        rt.run(until=lambda: bool(outcome), idle_timeout=5.0)
        assert "kaboom" in str(outcome[0])


class TestFramingEdges:
    def test_partial_reads_mid_frame_reassemble(self, rt):
        """A request dribbled one byte at a time parses identically."""
        node_a, _node_b = make_pair(rt)
        port = node_a.listener.getsockname()[1]
        raw = frame_bytes(KIND_REQUEST, 7, b"dribble")
        received = []

        @do
        def dribbler():
            conn = yield rt.io.connect(("127.0.0.1", port))
            for index in range(len(raw)):
                yield rt.io.write_all(conn, raw[index:index + 1])
                yield sys_sleep(0.001)
            reply = bytearray()
            while True:
                data = yield rt.io.read(conn, 4096)
                if not data:
                    break
                reply.extend(data)
                # One whole reply frame is enough.
                if len(reply) >= 4:
                    (length,) = _LEN.unpack(bytes(reply[:4]))
                    if len(reply) >= 4 + length:
                        break
            received.append(bytes(reply))
            yield rt.io.close(conn)

        rt.spawn(dribbler())
        rt.run(until=lambda: bool(received), idle_timeout=10.0)
        assert received[0] == frame_bytes(KIND_REPLY, 7, b"echo:dribble")

    def test_oversized_frame_downs_the_link(self, rt):
        node_a, _node_b = make_pair(rt, max_frame=1024)
        port = node_a.listener.getsockname()[1]
        finished = []

        @do
        def attacker():
            conn = yield rt.io.connect(("127.0.0.1", port))
            # Announce a frame far beyond max_frame; the server must
            # close the link instead of buffering toward it.
            yield rt.io.write_all(conn, _LEN.pack(64 * 1024 * 1024))
            data = yield rt.io.read(conn, 4096)
            finished.append(data)
            yield rt.io.close(conn)

        rt.spawn(attacker())
        rt.run(until=lambda: bool(finished), idle_timeout=5.0)
        assert finished == [b""]  # EOF: link closed, nothing served
        assert node_a.stats.served == 0


class TestFailureModes:
    def _fake_peer_node(self, rt, fake_behavior):
        """Node 0 whose peer 1 is a raw endpoint driven by the test."""
        listener = rt.make_listener()
        fake = rt.make_listener()
        peers = {
            0: ("127.0.0.1", listener.getsockname()[1]),
            1: ("127.0.0.1", fake.getsockname()[1]),
        }
        node = MeshNode(0, rt.io, listener, peers, handler=echo_handler)
        rt.spawn(node.serve(), name="mesh-real")
        rt.spawn(fake_behavior(fake), name="mesh-fake")
        return node

    def test_peer_disconnect_mid_call_raises_not_hangs(self, rt):
        @do
        def reads_then_hangs_up(fake):
            conn = yield rt.io.accept(fake)
            yield rt.io.read(conn, 8)  # partial frame consumed
            yield rt.io.close(conn)    # then vanish before replying

        node = self._fake_peer_node(rt, reads_then_hangs_up)
        outcome = []

        @do
        def caller():
            try:
                yield node.call(1, b"doomed", timeout=10.0)
                outcome.append("reply")
            except MeshPeerDown as exc:
                outcome.append(exc)

        started = time.monotonic()
        rt.spawn(caller())
        rt.run(until=lambda: bool(outcome), idle_timeout=10.0)
        # Failure arrived via the demux EOF path, well before the 10s
        # timeout: a monadic exception, not a hang.
        assert isinstance(outcome[0], MeshPeerDown)
        assert time.monotonic() - started < 5.0
        assert node.stats.peer_failures >= 1

    def test_unresponsive_peer_times_out(self, rt):
        @do
        def accepts_but_never_replies(fake):
            conn = yield rt.io.accept(fake)
            while True:
                data = yield rt.io.read(conn, 4096)
                if not data:
                    break
            yield rt.io.close(conn)

        node = self._fake_peer_node(rt, accepts_but_never_replies)
        outcome = []

        @do
        def caller():
            try:
                yield node.call(1, b"slow", timeout=0.2)
            except MeshTimeout as exc:
                outcome.append(exc)

        rt.spawn(caller())
        rt.run(until=lambda: bool(outcome), idle_timeout=10.0)
        assert isinstance(outcome[0], MeshTimeout)
        assert node.stats.timeouts == 1

    def test_wedged_peer_write_times_out_as_peer_down(self, rt):
        """A peer that accepts the link but stops *reading* (socket
        buffers fill, the writer parks on EPOLLOUT forever) must fail
        the writer with MeshPeerDown within write_timeout — the ROADMAP
        mesh-hardening item."""
        # Tiny buffers on both ends so a modest frame wedges the write.
        fake = socket_mod.socket(socket_mod.AF_INET,
                                 socket_mod.SOCK_STREAM)
        fake.setsockopt(socket_mod.SOL_SOCKET, socket_mod.SO_RCVBUF, 4096)
        fake.bind(("127.0.0.1", 0))
        fake.listen(8)
        fake.setblocking(False)

        original_connect = rt.backend.nb_connect

        def small_buffer_connect(address, label="conn"):
            sock = original_connect(address, label)
            sock.setsockopt(socket_mod.SOL_SOCKET, socket_mod.SO_SNDBUF,
                            4096)
            return sock

        rt.backend.nb_connect = small_buffer_connect

        listener = rt.make_listener()
        peers = {
            0: ("127.0.0.1", listener.getsockname()[1]),
            1: fake.getsockname(),
        }
        node = MeshNode(0, rt.io, listener, peers, handler=echo_handler,
                        write_timeout=0.3)
        rt.spawn(node.serve(), name="mesh-real")

        @do
        def accepts_but_never_reads():
            conn = yield rt.io.accept(fake)
            while True:
                yield sys_sleep(0.5)
                _ = conn  # hold the connection open, read nothing

        rt.spawn(accepts_but_never_reads(), name="wedged-peer")
        outcome = []

        @do
        def caller():
            try:
                yield node.call(1, b"w" * (1024 * 1024), timeout=30.0)
                outcome.append("reply")
            except MeshPeerDown as exc:
                outcome.append(exc)

        started = time.monotonic()
        rt.spawn(caller())
        rt.run(until=lambda: bool(outcome), idle_timeout=10.0)
        # The failure came from the write watchdog, well before the 30s
        # call timeout — the wedged link no longer wedges the writer.
        assert isinstance(outcome[0], MeshPeerDown)
        assert time.monotonic() - started < 5.0
        assert node.stats.write_timeouts == 1
        fake.close()

    def test_fan_out_with_one_dead_peer_merges_partials(self, rt):
        # Peer 2's address is a closed port: dial is refused.
        dead = rt.make_listener()
        dead_address = ("127.0.0.1", dead.getsockname()[1])
        dead.close()

        listener_a = rt.make_listener()
        listener_b = rt.make_listener()
        peers = {
            0: ("127.0.0.1", listener_a.getsockname()[1]),
            1: ("127.0.0.1", listener_b.getsockname()[1]),
            2: dead_address,
        }
        node_a = MeshNode(0, rt.io, listener_a, peers,
                          handler=echo_handler)
        node_b = MeshNode(1, rt.io, listener_b, peers,
                          handler=echo_handler)
        rt.spawn(node_a.serve(), name="mesh-a")
        rt.spawn(node_b.serve(), name="mesh-b")
        results = []

        @do
        def caller():
            merged = yield node_a.fan_out(
                {1: b"live", 2: b"dead"}, timeout=0.5
            )
            results.append(merged)

        started = time.monotonic()
        rt.spawn(caller())
        rt.run(until=lambda: bool(results), idle_timeout=10.0)
        merged = results[0]
        assert merged[1] == b"echo:live"
        # The dead peer is an exception *value*, not a lost fan-out.
        assert isinstance(merged[2], MeshPeerDown | MeshTimeout)
        assert time.monotonic() - started < 5.0


class TestBatchedEgress:
    def test_concurrent_casts_coalesce_into_one_flush(self, rt):
        # Eight casts fired in one scheduler turn must leave as (nearly)
        # one gathered write, not eight syscalls — the per-link outbound
        # queue is the point of the egress path.
        seen = []

        def recording(body):
            seen.append(body)
            return pure(b"")

        node_a, node_b = make_pair(rt, handler_b=recording)
        done = []

        @do
        def warm():
            # Dial the link first so the casts race only the flusher.
            yield node_a.call(1, b"warm")

        @do
        def one_cast(index):
            yield node_a.cast(1, b"cast-%d" % index)
            done.append(index)

        warmed = []

        @do
        def driver():
            yield warm()
            warmed.append(True)

        rt.spawn(driver())
        rt.run(until=lambda: bool(warmed), idle_timeout=5.0)
        for index in range(8):
            rt.spawn(one_cast(index), name=f"cast-{index}")
        # A cast resumes once *flushed*; wait for the receiver too.
        rt.run(until=lambda: len(done) == 8 and len(seen) == 9,
               idle_timeout=5.0)
        assert len(done) == 8
        assert sorted(seen[1:]) == sorted(
            b"cast-%d" % index for index in range(8)
        )
        stats = node_a.stats
        # 1 warm call + 8 casts = 9 frames, but far fewer flushes.
        assert stats.frames_sent == 9
        assert stats.flushes < 9
        assert stats.batched_flushes >= 1
        assert stats.max_frames_per_flush > 1
        assert stats.frames_per_flush > 1.0

    def test_concurrent_replies_coalesce_on_the_server_link(self, rt):
        # Many concurrent calls multiplexed on one link: the server's
        # replies ride the same outbound queue, so its flush counters
        # show batching too.
        node_a, node_b = make_pair(rt)
        replies = []

        @do
        def one_call(index):
            reply = yield node_a.call(1, b"req-%d" % index)
            replies.append(reply)

        for index in range(8):
            rt.spawn(one_call(index), name=f"call-{index}")
        rt.run(until=lambda: len(replies) == 8, idle_timeout=5.0)
        assert sorted(replies) == sorted(
            b"echo:req-%d" % index for index in range(8)
        )
        # Server-side replies batched (the handler is synchronous, so
        # all eight workers finish within one loop turn).
        assert node_b.stats.frames_sent == 8
        assert node_b.stats.flushes < 8
        assert node_b.stats.batched_flushes >= 1

    def test_no_timer_thread_per_call(self, rt):
        # The shared wheel replaces per-call/per-link timer threads:
        # N calls must fork zero sweeper/watchdog threads and at most a
        # couple of wheel sleepers (one per idle->busy transition).
        names: list = []
        original = rt.sched._new_tcb

        def recording(name):
            names.append(name)
            return original(name)

        rt.sched._new_tcb = recording
        node_a, _node_b = make_pair(rt)
        done = []

        @do
        def caller():
            for index in range(20):
                yield node_a.call(1, b"seq-%d" % index)
            done.append(True)

        rt.spawn(caller())
        rt.run(until=lambda: bool(done), idle_timeout=10.0)
        assert done
        spawned = [name for name in names if name]
        assert not any("sweeper" in name for name in spawned)
        assert not any("watchdog" in name for name in spawned)
        sleepers = [name for name in spawned if "sleeper" in name]
        # 20 calls, O(1) wheel sleepers (each timeout is a heap entry).
        assert len(sleepers) <= 3
        assert node_a.timers.scheduled >= 20

    def test_flush_caps_split_oversized_batches(self, rt):
        # A burst larger than flush_max_iov still delivers everything,
        # split across capped gathered writes.  The ceiling is pinned to
        # the floor so the adaptive cap cannot grow mid-test.
        seen = []

        def recording(body):
            seen.append(body)
            return pure(b"")

        node_a, _node_b = make_pair(rt, handler_b=recording,
                                    flush_max_iov=4,
                                    flush_max_iov_ceiling=4)
        done = []

        @do
        def one_cast(index):
            yield node_a.cast(1, b"x%02d" % index)
            done.append(index)

        for index in range(10):
            rt.spawn(one_cast(index), name=f"cast-{index}")
        rt.run(until=lambda: len(done) == 10 and len(seen) == 10,
               idle_timeout=5.0)
        assert sorted(seen) == sorted(b"x%02d" % index for index in range(10))
        assert node_a.stats.max_frames_per_flush <= 4
        assert node_a.stats.flushes >= 3  # ceil(10 / 4)
        assert node_a.health()["flush_cap"] == 4  # pinned: never moved

    def test_adaptive_cap_grows_under_sustained_backlog(self, rt):
        # A burst far larger than the floor saturates consecutive flushes,
        # so the cap doubles toward the ceiling and health() shows it.
        seen = []

        def recording(body):
            seen.append(body)
            return pure(b"")

        node_a, _node_b = make_pair(rt, handler_b=recording,
                                    flush_max_iov=2,
                                    flush_max_iov_ceiling=64)
        done = []

        @do
        def one_cast(index):
            yield node_a.cast(1, b"y%02d" % index)
            done.append(index)

        for index in range(12):
            rt.spawn(one_cast(index), name=f"acast-{index}")
        rt.run(until=lambda: len(done) == 12 and len(seen) == 12,
               idle_timeout=5.0)
        health = node_a.health()
        assert health["flush_cap_grows"] >= 1
        assert health["flush_cap"] > 2
        assert node_a.stats.max_frames_per_flush > 2  # the growth engaged


class TestAdaptiveFlushCap:
    """Unit tests for the backlog-adaptive cap (no sockets involved)."""

    def test_grows_on_saturated_flush_with_backlog(self):
        cap = AdaptiveFlushCap(4, 16)
        cap.note_flush(4, 10)
        assert cap.value == 8
        cap.note_flush(8, 3)
        assert cap.value == 16
        assert cap.grows == 2

    def test_respects_ceiling(self):
        cap = AdaptiveFlushCap(4, 16)
        for _ in range(10):
            cap.note_flush(cap.value, 100)
        assert cap.value == 16

    def test_saturated_flush_without_backlog_does_not_grow(self):
        cap = AdaptiveFlushCap(4, 16)
        cap.note_flush(4, 0)  # drained the queue exactly: burst over
        assert cap.value == 4

    def test_decays_after_two_underfilled_flushes(self):
        cap = AdaptiveFlushCap(4, 64)
        cap.note_flush(4, 10)
        cap.note_flush(8, 10)
        assert cap.value == 16
        cap.note_flush(2, 0)
        assert cap.value == 16  # one quiet flush: not yet
        cap.note_flush(1, 0)
        assert cap.value == 8
        assert cap.decays == 1

    def test_decay_stops_at_floor(self):
        cap = AdaptiveFlushCap(4, 64)
        for _ in range(20):
            cap.note_flush(1, 0)
        assert cap.value == 4

    def test_moderate_flush_resets_decay_streak(self):
        cap = AdaptiveFlushCap(4, 64)
        cap.note_flush(4, 10)  # grow to 8
        cap.note_flush(2, 0)   # under half: streak 1
        cap.note_flush(5, 0)   # over half: streak resets
        cap.note_flush(2, 0)   # streak 1 again
        assert cap.value == 8

    def test_floor_validation(self):
        with pytest.raises(ValueError):
            AdaptiveFlushCap(0, 8)

    def test_ceiling_clamped_to_floor(self):
        cap = AdaptiveFlushCap(8, 2)
        assert cap.ceiling == 8
        cap.note_flush(8, 5)
        assert cap.value == 8  # floor == ceiling: static behavior


class TestKeepalive:
    def test_idle_link_gets_pinged_and_stays_usable(self, rt):
        node_a, node_b = make_pair(rt, keepalive_interval=0.05)
        first = []

        @do
        def opener():
            reply = yield node_a.call(1, b"open")
            first.append(reply)

        rt.spawn(opener())
        rt.run(until=lambda: bool(first), idle_timeout=5.0)
        # Let the link sit idle across several keepalive intervals.
        rt.run(until=lambda: node_a.stats.pings_sent >= 2,
               idle_timeout=5.0)
        assert node_a.stats.pings_sent >= 2
        assert node_a.connected_peers() == 1
        # Pings were read and discarded server-side: no served bump...
        assert node_b.stats.served == 1
        # ...and the link still carries real traffic afterwards.
        second = []

        @do
        def reuser():
            reply = yield node_a.call(1, b"again")
            second.append(reply)

        rt.spawn(reuser())
        rt.run(until=lambda: bool(second), idle_timeout=5.0)
        assert second == [b"echo:again"]

    def test_busy_link_is_not_pinged(self, rt):
        node_a, _node_b = make_pair(rt, keepalive_interval=0.05)
        stop = []

        @do
        def chatter():
            # Constant traffic: every keepalive tick sees fresh frames.
            while not stop:
                yield node_a.call(1, b"busy")

        rt.spawn(chatter())
        deadline = time.monotonic() + 0.4
        rt.run(until=lambda: time.monotonic() >= deadline,
               idle_timeout=5.0)
        stop.append(True)
        rt.run(until=lambda: True)
        assert node_a.stats.calls > 2
        assert node_a.stats.pings_sent == 0

    def test_enqueue_after_flush_failure_fails_fast(self, rt):
        # A connection whose flusher died latches the failure: a sender
        # racing the failure drain must get MeshPeerDown immediately,
        # not park forever behind a drain that already passed.
        node_a, _node_b = make_pair(rt)
        outcome = []

        @do
        def driver():
            yield node_a.call(1, b"open")
            link = node_a._links[1]
            link.out.failed = MeshPeerDown("flusher died mid-drain")
            try:
                yield node_a.cast(1, b"late frame")
            except MeshPeerDown as exc:
                outcome.append(exc)

        started = time.monotonic()
        rt.spawn(driver())
        rt.run(until=lambda: bool(outcome), idle_timeout=5.0)
        assert outcome and isinstance(outcome[0], MeshPeerDown)
        assert time.monotonic() - started < 2.0  # fast-fail, no hang
