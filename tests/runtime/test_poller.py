"""The live-runtime I/O pollers: persistent epoll interest sets and the
portable selectors fallback.

The tentpole property under test: the epoll poller mutates the kernel
interest set only when the combined waiter mask actually *changes* — the
canonical park → fire → re-park cycle of a keep-alive connection costs
zero ``epoll_ctl`` calls after first registration.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core.do_notation import do
from repro.core.events import EVENT_READ, EVENT_WRITE
from repro.core.syscalls import sys_fork
from repro.runtime.live_runtime import (
    HAS_EPOLL,
    EpollPoller,
    LiveRuntime,
    SelectorPoller,
    make_poller,
)

needs_epoll = pytest.mark.skipif(not HAS_EPOLL, reason="platform lacks epoll")


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    a.setblocking(False)
    b.setblocking(False)
    yield a, b
    a.close()
    b.close()


@needs_epoll
class TestEpollInterestSet:
    def make(self):
        return EpollPoller()

    def test_repark_same_mask_is_free(self, pair):
        """The keep-alive cycle: after the first registration, parking on
        the same mask again issues no epoll_ctl at all."""
        a, b = pair
        poller = self.make()
        try:
            tcb = object()
            poller.wait(a, EVENT_READ, tcb, lambda v: v)
            assert (poller.ctl_adds, poller.ctl_mods, poller.ctl_dels) == (
                1, 0, 0,
            )
            for cycle in range(10):
                b.send(b"x")
                resumes = poller.poll(1.0)
                assert len(resumes) == 1
                assert resumes[0][2] & EVENT_READ
                a.recv(16)  # consume, as the resumed thread would
                poller.wait(a, EVENT_READ, tcb, lambda v: v)
            # Ten full park/fire/re-park cycles later: still one ctl call.
            assert poller.ctl_calls == 1
        finally:
            poller.close()

    def test_mask_widening_is_one_modify(self, pair):
        a, b = pair
        poller = self.make()
        try:
            poller.wait(a, EVENT_READ, object(), lambda v: v)
            poller.wait(a, EVENT_WRITE, object(), lambda v: v)
            assert (poller.ctl_adds, poller.ctl_mods) == (1, 1)
            # A further reader adds nothing: mask already covers READ.
            poller.wait(a, EVENT_READ, object(), lambda v: v)
            assert (poller.ctl_adds, poller.ctl_mods) == (1, 1)
            # The socketpair end is writable: the write waiter fires.
            resumes = poller.poll(1.0)
            assert any(ready & EVENT_WRITE for _t, _c, ready in resumes)
        finally:
            poller.close()

    def test_spurious_fire_tolerated_while_busy(self, pair):
        """A busy poll (timeout 0: the scheduler still has work) tolerates
        unclaimed readiness without touching the interest set — the
        resumed thread simply hasn't consumed its data yet."""
        a, b = pair
        poller = self.make()
        try:
            poller.wait(a, EVENT_READ, object(), lambda v: v)
            b.send(b"pending")
            assert len(poller.poll(1.0)) == 1  # waiter resumed, mask sticky
            ctl_before = poller.ctl_calls
            assert poller.poll(0.0) == []
            assert poller.poll(0.0) == []
            assert poller.ctl_calls == ctl_before
            # Re-parking on the still-armed mask stays free, and the
            # buffered data fires immediately.
            poller.wait(a, EVENT_READ, object(), lambda v: v)
            assert poller.ctl_calls == ctl_before
            assert len(poller.poll(0.0)) == 1
        finally:
            poller.close()

    def test_spurious_fire_narrows_mask_before_sleeping(self, pair):
        """An *idle* poll (timeout > 0) must narrow the mask on a spurious
        fire, or the unclaimed descriptor would spin the sleep."""
        a, b = pair
        poller = self.make()
        try:
            poller.wait(a, EVENT_READ, object(), lambda v: v)
            b.send(b"pending")
            assert len(poller.poll(1.0)) == 1
            # Nobody re-parked and the data is still unread: the idle-poll
            # fire is spurious and disarms the descriptor.
            assert poller.poll(0.01) == []
            assert poller.ctl_mods >= 1
            assert poller.poll(0.01) == []  # disarmed: silence, not a spin
        finally:
            poller.close()

    def test_discard_forgets_the_descriptor(self, pair):
        a, b = pair
        poller = self.make()
        try:
            poller.wait(a, EVENT_READ, object(), lambda v: v)
            assert poller.waiter_count == 1
            poller.discard(a)
            assert poller.waiter_count == 0
            assert poller.ctl_dels == 1
            b.send(b"x")
            assert poller.poll(0.1) == []
        finally:
            poller.close()

    def test_error_hangup_wakes_both_directions(self, pair):
        a, b = pair
        poller = self.make()
        try:
            poller.wait(a, EVENT_READ, object(), lambda v: v)
            b.close()
            resumes = poller.poll(1.0)
            assert len(resumes) == 1
            assert resumes[0][2] & EVENT_READ
        finally:
            poller.close()


class TestMakePoller:
    def test_auto_prefers_epoll_where_available(self):
        poller = make_poller("auto")
        try:
            assert poller.name == ("epoll" if HAS_EPOLL else "select")
        finally:
            poller.close()

    def test_explicit_select(self):
        poller = make_poller("select")
        try:
            assert isinstance(poller, SelectorPoller)
        finally:
            poller.close()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_poller("kqueue-someday")


def _echo_roundtrips(rt: LiveRuntime, cycles: int, payload: bytes = b"ping"):
    """An echo server on ``rt`` driven by a blocking client thread for
    ``cycles`` request/response round trips.  Returns when done."""
    listener = rt.make_listener()
    port = listener.getsockname()[1]
    finished = []

    @do
    def server():
        conn = yield rt.io.accept(listener)
        while True:
            data = yield rt.io.read(conn, 4096)
            if not data:
                break
            yield rt.io.write_all(conn, data)
        yield rt.io.close(conn)

    def client():
        sock = socket.create_connection(("127.0.0.1", port), timeout=5)
        try:
            for cycle in range(cycles):
                sock.sendall(payload)
                got = b""
                while len(got) < len(payload):
                    got += sock.recv(4096)
                assert got == payload
                if cycle % 8 == 0:
                    time.sleep(0.002)  # force the server to park between
        finally:
            sock.close()
        finished.append(True)

    rt.spawn(server(), name="echo")
    driver = threading.Thread(target=client, daemon=True)
    driver.start()
    rt.run(until=lambda: bool(finished), idle_timeout=10.0)
    driver.join(timeout=10)
    listener.close()
    assert finished, "client thread never completed"


@needs_epoll
class TestRuntimeHotPath:
    def test_keepalive_cycles_do_not_rearm(self):
        """End to end: many echo round trips over one connection keep the
        epoll_ctl count flat (no per-wait re-registration)."""
        rt = LiveRuntime(poller="epoll")
        try:
            assert isinstance(rt.poller, EpollPoller)
            _echo_roundtrips(rt, cycles=50)
            # Budget: listener ADD + connection ADD + teardown DELs + a
            # handful of spurious-narrowing MODs.  Fifty cycles of
            # add/del-per-wait churn would exceed this many times over.
            assert rt.poller.ctl_calls <= 10, (
                f"epoll_ctl churn: adds={rt.poller.ctl_adds} "
                f"mods={rt.poller.ctl_mods} dels={rt.poller.ctl_dels}"
            )
        finally:
            rt.shutdown()


class TestSelectorFallback:
    def test_echo_roundtrips_on_fallback_loop(self):
        rt = LiveRuntime(poller="select")
        try:
            assert isinstance(rt.poller, SelectorPoller)
            assert rt.poller.name == "select"
            _echo_roundtrips(rt, cycles=20)
            # The fallback re-registers per wait: churn is expected — the
            # loop must simply work.
            assert rt.poller.ctl_calls > 0
        finally:
            rt.shutdown()

    def test_fallback_concurrent_clients(self):
        rt = LiveRuntime(poller="select")
        try:
            listener = rt.make_listener()
            port = listener.getsockname()[1]
            done = []

            @do
            def handle(conn):
                data = yield rt.io.read(conn, 1024)
                yield rt.io.write_all(conn, data[::-1])
                yield rt.io.close(conn)

            @do
            def acceptor():
                while True:
                    batch = yield rt.io.accept_many(listener, 8)
                    for conn in batch:
                        yield sys_fork(handle(conn))

            @do
            def client(i):
                conn = yield rt.io.connect(("127.0.0.1", port))
                msg = f"fallback-{i}".encode()
                yield rt.io.write_all(conn, msg)
                reply = yield rt.io.read_exact(conn, len(msg))
                assert reply == msg[::-1]
                done.append(i)
                yield rt.io.close(conn)

            rt.spawn(acceptor())
            for i in range(10):
                rt.spawn(client(i))
            rt.run(until=lambda: len(done) == 10, idle_timeout=5.0)
            listener.close()
            assert sorted(done) == list(range(10))
        finally:
            rt.shutdown()
