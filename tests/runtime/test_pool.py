"""The outbound connection pool: leases, handoff, health, timeouts.

All tests run on the live runtime — the pool's connect watchdog and
dead-upstream detection depend on real non-blocking connect semantics
(``EINPROGRESS`` + ``SO_ERROR``), which the simulated stack does not
model.  A kernel listen backlog completes TCP handshakes without an
accept loop, so most tests need no server thread at all.
"""

from __future__ import annotations

import socket

import pytest

from repro.core.do_notation import do
from repro.core.syscalls import sys_sleep
from repro.core.thread import join_all, spawn
from repro.runtime.live_runtime import LiveRuntime, make_listener
from repro.runtime.pool import (
    ConnectionPool,
    PoolClosed,
    PoolTimeout,
    UpstreamDown,
)


@pytest.fixture
def rt():
    runtime = LiveRuntime()
    yield runtime
    runtime.shutdown()


def run(rt, comp, timeout=10.0):
    done = []

    @do
    def driver():
        yield comp
        done.append(True)

    rt.spawn(driver(), name="driver")
    rt.run(until=lambda: bool(done), idle_timeout=timeout)
    assert done, "driver did not finish"


def make_pool(rt, listener, **kwargs) -> ConnectionPool:
    kwargs.setdefault("probe_interval", 0.05)
    return ConnectionPool(
        rt.io, rt.timers, listener.getsockname(), **kwargs
    )


class TestLeasing:
    def test_release_idles_and_reacquire_reuses(self, rt):
        listener = make_listener()
        pool = make_pool(rt, listener, size=2)
        seen = []

        @do
        def body():
            first = yield pool.acquire()
            yield pool.release(first)
            second = yield pool.acquire()
            seen.append(second is first)
            yield pool.release(second)
            yield pool.close()

        run(rt, body())
        listener.close()
        assert seen == [True]
        assert pool.dials == 1
        assert pool.reuses == 1
        assert pool.reuse_ratio == 0.5  # 1 of 2 leases reused

    def test_parked_acquire_gets_direct_handoff(self, rt):
        listener = make_listener()
        pool = make_pool(rt, listener, size=1)
        order = []

        @do
        def holder():
            pc = yield pool.acquire()
            order.append("leased")
            yield sys_sleep(0.05)
            order.append("released")
            yield pool.release(pc)

        @do
        def waiter():
            yield sys_sleep(0.01)  # ensure the holder wins the slot
            pc = yield pool.acquire()
            order.append("handed")
            yield pool.release(pc)

        @do
        def body():
            handles = []
            for comp in (holder(), waiter()):
                handle = yield spawn(comp)
                handles.append(handle)
            yield join_all(handles)
            yield pool.close()

        run(rt, body())
        listener.close()
        assert order == ["leased", "released", "handed"]
        assert pool.dials == 1  # the waiter inherited the socket
        assert pool.handoffs == 1

    def test_exhaustion_parks_then_times_out_cleanly(self, rt):
        listener = make_listener()
        pool = make_pool(rt, listener, size=1)
        outcome = []

        @do
        def body():
            pc = yield pool.acquire()  # hold the only slot
            try:
                yield pool.acquire(timeout=0.05)
            except PoolTimeout as exc:
                outcome.append(exc)
            yield pool.release(pc)
            yield pool.close()

        run(rt, body())
        listener.close()
        assert len(outcome) == 1
        assert pool.lease_timeouts == 1
        # The post-timeout pool is healthy: the held lease came back.
        assert pool.leased == 0
        assert pool.waiting == 0

    def test_discard_hands_waiter_a_fresh_dial(self, rt):
        listener = make_listener()
        pool = make_pool(rt, listener, size=1)
        results = []

        @do
        def holder():
            pc = yield pool.acquire()
            yield sys_sleep(0.03)
            yield pool.release(pc, discard=True)  # judged broken

        @do
        def waiter():
            yield sys_sleep(0.01)
            pc = yield pool.acquire()
            results.append(pc)
            yield pool.release(pc)

        @do
        def body():
            handles = []
            for comp in (holder(), waiter()):
                handle = yield spawn(comp)
                handles.append(handle)
            yield join_all(handles)
            yield pool.close()

        run(rt, body())
        listener.close()
        assert len(results) == 1
        assert pool.dials == 2  # discard forced a fresh socket
        assert pool.discards == 1
        assert pool.reuses == 0


class TestHealth:
    def test_dead_upstream_latches_down_and_fails_fast(self, rt):
        # Reserve a port with no listener behind it.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        address = probe.getsockname()
        probe.close()
        pool = ConnectionPool(
            rt.io, rt.timers, address, size=2,
            connect_timeout=0.5, probe_interval=10.0,
        )
        errors = []

        @do
        def body():
            for _ in range(2):
                try:
                    yield pool.acquire()
                except UpstreamDown as exc:
                    errors.append(exc)
            yield pool.close()

        run(rt, body())
        assert len(errors) == 2
        assert pool.downs == 1
        assert pool.dials == 1  # the second acquire failed fast, no dial

    def test_reprobe_readmits_a_recovered_upstream(self, rt):
        placeholder = socket.socket()
        placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        placeholder.bind(("127.0.0.1", 0))
        address = placeholder.getsockname()
        placeholder.close()
        pool = ConnectionPool(
            rt.io, rt.timers, address, size=2,
            connect_timeout=0.5, probe_interval=0.05,
        )
        stages = []
        revived = []

        @do
        def body():
            try:
                yield pool.acquire()
            except UpstreamDown:
                stages.append("down")
            # Bring the upstream back and wait for the probe to land.
            revived.append(make_listener(address[0], address[1]))
            for _ in range(100):
                if not pool.down:
                    break
                yield sys_sleep(0.02)
            stages.append("up" if not pool.down else "still-down")
            pc = yield pool.acquire()
            yield pool.release(pc)
            yield pool.close()

        run(rt, body())
        revived[0].close()
        assert stages == ["down", "up"]
        assert pool.readmissions == 1
        assert pool.probes >= 1

    def test_down_broadcast_fails_parked_waiters(self, rt):
        listener = make_listener()
        pool = make_pool(rt, listener, size=1, probe_interval=10.0)
        failures = []

        @do
        def parked():
            yield sys_sleep(0.01)
            try:
                yield pool.acquire(timeout=5.0)
            except UpstreamDown as exc:
                failures.append(exc)

        @do
        def body():
            pc = yield pool.acquire()
            handle = yield spawn(parked())
            yield sys_sleep(0.05)  # let the waiter park
            yield pool._mark_down(OSError("injected"))
            yield handle.join()
            yield pool.release(pc)
            yield pool.close()

        run(rt, body())
        listener.close()
        assert len(failures) == 1
        assert pool.lease_timeouts == 0  # failed fast, not by timeout


class TestLifecycle:
    def test_idle_reaper_evicts_stale_connections(self, rt):
        listener = make_listener()
        pool = make_pool(rt, listener, size=2, idle_timeout=0.05)

        @do
        def body():
            pc = yield pool.acquire()
            yield pool.release(pc)
            for _ in range(100):
                if pool.idle == 0:
                    break
                yield sys_sleep(0.02)
            yield pool.close()

        run(rt, body())
        listener.close()
        assert pool.evicted_idle == 1
        assert pool.idle == 0

    def test_close_fails_parked_waiters(self, rt):
        listener = make_listener()
        pool = make_pool(rt, listener, size=1)
        failures = []

        @do
        def parked():
            yield sys_sleep(0.01)
            try:
                yield pool.acquire(timeout=5.0)
            except PoolClosed as exc:
                failures.append(exc)

        @do
        def body():
            pc = yield pool.acquire()
            handle = yield spawn(parked())
            yield sys_sleep(0.05)
            yield pool.close()
            yield handle.join()
            yield pool.release(pc)  # late release after close: no error

        run(rt, body())
        listener.close()
        assert len(failures) == 1
        assert pool.closed

    def test_acquire_after_close_raises(self, rt):
        listener = make_listener()
        pool = make_pool(rt, listener)
        errors = []

        @do
        def body():
            yield pool.close()
            try:
                yield pool.acquire()
            except PoolClosed as exc:
                errors.append(exc)

        run(rt, body())
        listener.close()
        assert len(errors) == 1

    def test_no_timer_thread_per_lease(self, rt):
        # The PR-5 assertion, applied to leases: N acquire/release
        # cycles (each arming a lease or connect deadline on the wheel)
        # fork zero per-lease timer threads.
        names: list = []
        original = rt.sched._new_tcb

        def recording(name):
            names.append(name)
            return original(name)

        rt.sched._new_tcb = recording
        listener = make_listener()
        pool = make_pool(rt, listener, size=2)

        @do
        def body():
            for _ in range(20):
                pc = yield pool.acquire()
                yield pool.release(pc)
            yield pool.close()

        run(rt, body())
        listener.close()
        spawned = [name for name in names if name]
        assert not any("sweeper" in name for name in spawned)
        assert not any("watchdog" in name for name in spawned)
        sleepers = [name for name in spawned if "sleeper" in name]
        assert len(sleepers) <= 3
