"""``NetIO.sendfile``: windowed kernel-to-socket egress.

Unit level uses fake backends (deterministic partial sends, no kernel)
to pin the resume arithmetic, the window cap, EOF detection, and the
pread-and-write fallback's byte parity; integration level runs the live
backend's real ``os.sendfile`` over a socketpair and a real temp file,
then replays the same transfer through the fallback and asserts the two
byte streams are identical.
"""

from __future__ import annotations

import socket

import pytest

from repro.core.do_notation import do
from repro.core.scheduler import run_threads
from repro.runtime.io_api import (
    SENDFILE_WINDOW,
    ConnectionClosed,
    FileBody,
    NetIO,
)
from repro.runtime.live_runtime import LiveRuntime


def _blob_file(blob: bytes, count: int | None = None,
               offset: int = 0, closes: list | None = None) -> FileBody:
    sink = closes if closes is not None else []
    return FileBody(
        -1,
        len(blob) if count is None else count,
        offset=offset,
        pread=lambda off, n: blob[off:off + n],
        close=lambda: sink.append(1),
    )


class _SendfileBackend:
    """Accepts at most ``cap`` bytes per ``nb_sendfile`` call — forcing
    mid-region resumes — and records the offsets/windows requested."""

    def __init__(self, cap: int = 1 << 30) -> None:
        self.cap = cap
        self.sent = bytearray()
        self.sendfile_calls = 0
        self.requests: list[tuple[int, int]] = []
        self.write_calls = 0

    def nb_sendfile(self, fd, file, offset, count):
        self.sendfile_calls += 1
        self.requests.append((offset, count))
        data = file.pread(offset, min(count, self.cap))
        self.sent.extend(data)
        return len(data)

    def nb_write(self, fd, data):
        self.write_calls += 1
        self.sent.extend(data)
        return len(data)


class _WriteOnlyBackend:
    """No ``nb_sendfile`` at all: the pread+write fallback must run."""

    def __init__(self) -> None:
        self.sent = bytearray()
        self.write_calls = 0

    def nb_write(self, fd, data):
        self.write_calls += 1
        self.sent.extend(data)
        return len(data)


def _run(comp) -> None:
    run_threads([comp])


def _send(io: NetIO, file: FileBody) -> int:
    results: list[int] = []

    @do
    def sender():
        count = yield io.sendfile("fd", file, file.offset, file.count)
        results.append(count)

    _run(sender())
    assert len(results) == 1
    return results[0]


class TestSendfile:
    def test_whole_region_in_one_call(self):
        backend = _SendfileBackend()
        io = NetIO(backend)
        blob = b"0123456789"
        sent = _send(io, _blob_file(blob))
        assert sent == 10
        assert bytes(backend.sent) == blob
        assert backend.sendfile_calls == 1

    def test_partial_send_resumes_mid_region(self):
        backend = _SendfileBackend(cap=5)
        io = NetIO(backend)
        blob = b"abcdefghijklm"  # 13 bytes, 5 per call
        sent = _send(io, _blob_file(blob))
        assert sent == 13
        assert bytes(backend.sent) == blob
        assert backend.sendfile_calls == 3
        # Each retry asked for exactly the unsent suffix.
        assert backend.requests == [(0, 13), (5, 8), (10, 3)]

    def test_offset_and_count_narrow_the_region(self):
        backend = _SendfileBackend()
        io = NetIO(backend)
        blob = b"HEADERbodyTRAILER"
        file = _blob_file(blob, count=4, offset=6)
        sent = _send(io, file)
        assert sent == 4
        assert bytes(backend.sent) == b"body"
        assert backend.requests == [(6, 4)]

    def test_windows_are_capped(self):
        backend = _SendfileBackend()
        io = NetIO(backend)
        size = SENDFILE_WINDOW * 2 + 17
        blob = bytes(range(256)) * (size // 256 + 1)
        blob = blob[:size]
        sent = _send(io, _blob_file(blob))
        assert sent == size
        assert bytes(backend.sent) == blob
        assert all(count <= SENDFILE_WINDOW
                   for _off, count in backend.requests)
        assert backend.sendfile_calls == 3

    def test_eof_mid_region_raises(self):
        # A file that shrinks under the committed Content-Length cannot
        # be patched up: the send must fail loudly, not hang.
        backend = _SendfileBackend()
        io = NetIO(backend)
        blob = b"short"
        file = _blob_file(blob, count=100)
        failures = []

        @do
        def sender():
            try:
                yield io.sendfile("fd", file, 0, file.count)
            except ConnectionClosed as exc:
                failures.append(exc)

        _run(sender())
        assert len(failures) == 1

    def test_negative_count_rejected(self):
        io = NetIO(_SendfileBackend())
        with pytest.raises(ValueError):
            io.sendfile("fd", _blob_file(b"x"), 0, -1)

    def test_zero_count_is_a_noop(self):
        backend = _SendfileBackend()
        io = NetIO(backend)
        file = _blob_file(b"", count=0)
        sent = _send(io, file)
        assert sent == 0
        assert backend.sendfile_calls == 0

    def test_fallback_without_nb_sendfile(self):
        backend = _WriteOnlyBackend()
        io = NetIO(backend)
        blob = b"fallback parity bytes" * 100
        sent = _send(io, _blob_file(blob))
        assert sent == len(blob)
        assert bytes(backend.sent) == blob
        assert backend.write_calls >= 1
        assert io.sendfile_fallbacks == 1

    def test_none_nb_sendfile_attribute_forces_fallback(self):
        # Platforms without os.sendfile set the attribute to None; NetIO
        # must treat that like a missing method.
        backend = _SendfileBackend()
        backend.nb_sendfile = None  # type: ignore[assignment]
        io = NetIO(backend)
        blob = b"no kernel assist here"
        sent = _send(io, _blob_file(blob))
        assert sent == len(blob)
        assert bytes(backend.sent) == blob
        assert backend.sendfile_calls == 0
        assert io.sendfile_fallbacks == 1


class TestFileBody:
    def test_close_is_idempotent_plain_code(self):
        closes: list = []
        file = _blob_file(b"x", closes=closes)
        file.close()
        file.close()
        assert closes == [1]
        assert file.closed

    def test_pread_without_reader_raises(self):
        file = FileBody(-1, 3)
        with pytest.raises(OSError):
            file.pread(0, 3)


class TestLiveSendfile:
    def _transfer(self, rt, blob, tmp_path, disable_kernel):
        path = tmp_path / "payload.bin"
        path.write_bytes(blob)
        import os

        fd = os.open(str(path), os.O_RDONLY)
        file = FileBody(
            fd, len(blob),
            pread=lambda off, n: os.pread(fd, n, off),
            close=lambda: os.close(fd),
        )
        left, right = socket.socketpair()
        left.setblocking(False)
        right.setblocking(False)
        io = rt.io
        if disable_kernel:
            # Same NetIO fallback the platform guard engages, without
            # mutating the class.
            from repro.runtime.live_runtime import LiveBackend

            class _NoSendfile(LiveBackend):
                nb_sendfile = None

            backend = _NoSendfile()
            io = NetIO(backend)
        received = bytearray()
        done = []
        try:

            @do
            def sender():
                count = yield io.sendfile(left, file, 0, file.count)
                done.append(count)

            @do
            def reader():
                while len(received) < len(blob):
                    data = yield rt.io.read(right, 65536)
                    if not data:
                        break
                    received.extend(data)

            rt.spawn(sender(), name="sender")
            rt.spawn(reader(), name="reader")
            rt.run(until=lambda: bool(done) and len(received) >= len(blob),
                   idle_timeout=10.0)
            assert done == [len(blob)]
            return bytes(received)
        finally:
            file.close()
            left.close()
            right.close()

    def test_real_sendfile_and_fallback_are_byte_identical(self, tmp_path):
        # Push well past the socket buffer so EAGAIN parks and
        # mid-region resumes run against the real kernel.
        blob = bytes(range(256)) * 2048  # 512 KiB
        rt = LiveRuntime(uncaught="store")
        try:
            via_sendfile = self._transfer(rt, blob, tmp_path,
                                          disable_kernel=False)
            assert rt.backend.sendfile_calls >= 1
            assert rt.backend.sendfile_bytes == len(blob)
        finally:
            rt.shutdown()
        rt = LiveRuntime(uncaught="store")
        try:
            via_fallback = self._transfer(rt, blob, tmp_path,
                                          disable_kernel=True)
            assert rt.backend.sendfile_calls == 0
        finally:
            rt.shutdown()
        assert via_sendfile == blob
        assert via_fallback == blob
