"""The simulated runtime: device syscalls, I/O wrappers, cost accounting."""

from __future__ import annotations

import pytest

from repro.core.do_notation import do
from repro.core.events import EVENT_READ, EVENT_WRITE
from repro.core.exceptions import DeadlockError
from repro.core.syscalls import (
    sys_aio_read,
    sys_blio,
    sys_epoll_wait,
    sys_fork,
    sys_now,
    sys_sleep,
)
from repro.runtime.io_api import ConnectionClosed
from repro.runtime.sim_runtime import SimRuntime
from repro.simos.params import SimParams


class TestTimers:
    def test_sleep_advances_virtual_time(self):
        rt = SimRuntime()

        @do
        def sleeper():
            before = yield sys_now()
            yield sys_sleep(2.5)
            after = yield sys_now()
            return after - before

        tcb = rt.spawn(sleeper())
        rt.run()
        assert tcb.result >= 2.5

    def test_many_sleepers_ordered(self):
        rt = SimRuntime()
        log = []

        @do
        def sleeper(delay, tag):
            yield sys_sleep(delay)
            log.append(tag)

        rt.spawn(sleeper(0.3, "c"))
        rt.spawn(sleeper(0.1, "a"))
        rt.spawn(sleeper(0.2, "b"))
        rt.run()
        assert log == ["a", "b", "c"]

    def test_until_condition_stops_early(self):
        rt = SimRuntime()
        ticks = []

        @do
        def ticker():
            while True:
                yield sys_sleep(1.0)
                ticks.append(1)

        rt.spawn(ticker())
        rt.run(until=lambda: len(ticks) >= 3)
        assert len(ticks) == 3

    def test_deadlock_detected(self):
        rt = SimRuntime()

        @do
        def stuck():
            yield sys_epoll_wait(rt.kernel.make_pipe()[0], EVENT_READ)

        rt.spawn(stuck())
        with pytest.raises(DeadlockError):
            rt.run()


class TestEpollPath:
    def test_epoll_wait_wakes_on_write(self):
        rt = SimRuntime()
        r, w = rt.kernel.make_pipe()
        log = []

        @do
        def reader():
            mask = yield sys_epoll_wait(r, EVENT_READ)
            log.append(("ready", mask & EVENT_READ != 0))
            data = r.read(100)
            log.append(("data", data))

        @do
        def writer():
            yield sys_sleep(0.5)
            w.write(b"wake up")

        rt.spawn(reader())
        rt.spawn(writer())
        rt.run()
        assert log == [("ready", True), ("data", b"wake up")]

    def test_netio_read_write_roundtrip(self):
        rt = SimRuntime()
        r, w = rt.kernel.make_pipe()
        got = []

        @do
        def reader():
            data = yield rt.io.read_exact(r, 10)
            got.append(data)

        @do
        def writer():
            yield rt.io.write_all(w, b"0123456789")

        rt.spawn(reader())
        rt.spawn(writer())
        rt.run()
        assert got == [b"0123456789"]

    def test_netio_moves_more_than_buffer(self):
        """32KB through a 4KB pipe: the Figure 18 inner loop."""
        rt = SimRuntime()
        r, w = rt.kernel.make_pipe()
        message = b"m" * (32 * 1024)
        got = []

        @do
        def reader():
            data = yield rt.io.read_exact(r, len(message))
            got.append(data)

        @do
        def writer():
            yield rt.io.write_all(w, message)

        rt.spawn(reader())
        rt.spawn(writer())
        rt.run()
        assert got == [message]
        assert rt.stats()["epoll_registrations"] > 0

    def test_read_eof(self):
        rt = SimRuntime()
        r, w = rt.kernel.make_pipe()

        @do
        def reader():
            data = yield rt.io.read(r, 100)
            return data

        @do
        def closer():
            yield sys_sleep(0.1)
            w.close()

        tcb = rt.spawn(reader())
        rt.spawn(closer())
        rt.run()
        assert tcb.result == b""

    def test_read_exact_raises_on_short_stream(self):
        rt = SimRuntime()
        r, w = rt.kernel.make_pipe()

        @do
        def reader():
            try:
                yield rt.io.read_exact(r, 100)
            except ConnectionClosed:
                return "short"

        @do
        def writer():
            w.write(b"only five")
            w.close()
            yield sys_sleep(0)

        tcb = rt.spawn(reader())
        rt.spawn(writer())
        rt.run()
        assert tcb.result == "short"

    def test_accept_and_echo_over_sim_sockets(self):
        rt = SimRuntime()
        listener = rt.kernel.net.listen()
        results = []

        @do
        def server():
            conn = yield rt.io.accept(listener)
            data = yield rt.io.read_exact(conn, 5)
            yield rt.io.write_all(conn, data.upper())
            yield rt.io.close(conn)

        @do
        def client():
            conn = yield rt.io.connect(listener)
            yield rt.io.write_all(conn, b"hello")
            reply = yield rt.io.read_exact(conn, 5)
            results.append(reply)

        rt.spawn(server())
        rt.spawn(client())
        rt.run()
        assert results == [b"HELLO"]


class TestAioPath:
    def make_runtime_with_file(self, size=1024 * 1024):
        rt = SimRuntime()
        rt.kernel.fs.create_file("blob", size)
        return rt, rt.kernel.fs.open("blob")

    def test_aio_read_returns_data(self):
        rt, handle = self.make_runtime_with_file()

        @do
        def reader():
            data = yield sys_aio_read(handle, 4096, 4096)
            return data

        tcb = rt.spawn(reader())
        rt.run()
        assert tcb.result == handle.content_at(4096, 4096)
        assert rt.kernel.disk.stats.completed == 1

    def test_concurrent_aio_readers_share_disk(self):
        rt, handle = self.make_runtime_with_file()
        done = []

        @do
        def reader(i):
            data = yield sys_aio_read(handle, i * 4096, 4096)
            done.append((i, len(data)))

        for i in range(20):
            rt.spawn(reader(i))
        rt.run()
        assert sorted(i for i, _n in done) == list(range(20))
        assert all(n == 4096 for _i, n in done)
        assert rt.kernel.disk.stats.max_queue_depth >= 10

    def test_aio_read_eof(self):
        rt, handle = self.make_runtime_with_file(size=100)

        @do
        def reader():
            data = yield sys_aio_read(handle, 200, 10)
            return data

        tcb = rt.spawn(reader())
        rt.run()
        assert tcb.result == b""


class TestBlockingPool:
    def test_blio_runs_action_and_resumes(self):
        rt = SimRuntime()
        side_effects = []

        @do
        def worker():
            value = yield sys_blio(lambda: side_effects.append("ran") or 42)
            return value

        tcb = rt.spawn(worker())
        rt.run()
        assert tcb.result == 42
        assert side_effects == ["ran"]
        assert rt.pool.completed == 1

    def test_blio_takes_virtual_time(self):
        rt = SimRuntime()

        @do
        def worker():
            yield sys_blio(lambda: None)

        rt.spawn(worker())
        rt.run()
        assert rt.kernel.clock.now >= rt.params.t_blio_handoff

    def test_pool_limits_concurrency(self):
        rt = SimRuntime(blocking_pool_size=2)
        for _ in range(10):
            rt.spawn(sys_blio(lambda: None))
        rt.run()
        assert rt.pool.completed == 10
        # 10 ops through 2 workers: at least 5 serialized handoffs.
        assert rt.kernel.clock.now >= 5 * rt.params.t_blio_handoff


class TestCostAccounting:
    def test_cpu_time_accumulates(self):
        rt = SimRuntime()
        r, w = rt.kernel.make_pipe()

        @do
        def writer():
            yield rt.io.write_all(w, b"x" * 4096)

        rt.spawn(writer())
        rt.run()
        assert rt.kernel.clock.cpu_consumed > 0

    def test_monadic_thread_ram_accounting(self):
        rt = SimRuntime()

        @do
        def idle():
            yield sys_sleep(0.1)

        before = rt.kernel.ram_used
        rt.spawn(idle())
        assert rt.kernel.ram_used == before + rt.params.monadic_thread_bytes
        rt.run()
        assert rt.kernel.ram_used == before

    def test_stats_snapshot_keys(self):
        rt = SimRuntime()
        rt.spawn(sys_sleep(0.1))
        rt.run()
        stats = rt.stats()
        for key in ("now", "cpu_consumed", "total_syscalls", "disk_completed"):
            assert key in stats


class TestManyThreads:
    def test_thousand_idle_epoll_waiters_cost_nothing(self):
        """The Figure 18 architecture claim: idle connections are free."""
        rt = SimRuntime()
        pipes = [rt.kernel.make_pipe() for _ in range(1000)]

        @do
        def idler(r):
            yield sys_epoll_wait(r, EVENT_READ)

        for r, _w in pipes:
            rt.spawn(idler(r))

        @do
        def active():
            yield sys_sleep(1.0)
            return "done"

        tcb = rt.spawn(active())
        rt.run(until=lambda: tcb.state == "done")
        # All idle waiters still parked; the active thread finished.
        assert rt.epoll.interested == 1000
        cpu = rt.kernel.clock.cpu_consumed
        assert cpu < 0.01  # registrations only, microseconds' worth

    def test_fork_storm_completes(self):
        rt = SimRuntime()
        counter = []

        @do
        def child():
            yield sys_sleep(0.001)
            counter.append(1)

        @do
        def root():
            for _ in range(500):
                yield sys_fork(child())

        rt.spawn(root())
        rt.run()
        assert len(counter) == 500
