"""The shared timer wheel: one heap, one sleeper, lazy cancellation.

Most tests run on :class:`~repro.runtime.sim_runtime.SimRuntime` — the
wheel only uses ``sys_now``/``sys_sleep``/``sys_fork``, so virtual time
makes firing order and sleeper lifecycle deterministic.  One smoke test
runs on the live runtime to pin the wall-clock path.
"""

from __future__ import annotations

from repro.core.do_notation import do
from repro.core.monad import pure
from repro.runtime.live_runtime import LiveRuntime
from repro.runtime.sim_runtime import SimRuntime
from repro.runtime.timer_wheel import TimerWheel


def run_sim(comp) -> SimRuntime:
    rt = SimRuntime()
    rt.spawn(comp, name="driver")
    rt.run_all()
    return rt


class TestFiring:
    def test_fires_in_deadline_order_not_insertion_order(self):
        wheel = TimerWheel()
        fired: list[str] = []

        @do
        def driver():
            # Inserted late-first: deadline order must win.
            yield wheel.schedule(0.30, lambda: fired.append("late"))
            yield wheel.schedule(0.10, lambda: fired.append("early"))
            yield wheel.schedule(0.20, lambda: fired.append("middle"))

        run_sim(driver())
        assert fired == ["early", "middle", "late"]

    def test_monadic_actions_run_on_the_sleeper(self):
        wheel = TimerWheel()
        results: list[bytes] = []

        @do
        def monadic_action():
            value = yield pure(b"ran")
            results.append(value)

        @do
        def driver():
            yield wheel.schedule(0.05, monadic_action)

        run_sim(driver())
        assert results == [b"ran"]
        assert wheel.fired == 1

    def test_plain_callable_actions_are_fine_too(self):
        wheel = TimerWheel()
        fired = []

        @do
        def driver():
            yield wheel.schedule(0.05, lambda: fired.append(True))

        run_sim(driver())
        assert fired == [True]

    def test_action_error_is_contained(self):
        # A broken action must not kill the sleeper: later timers fire.
        wheel = TimerWheel()
        fired = []

        def boom():
            raise RuntimeError("broken timer action")

        @do
        def driver():
            yield wheel.schedule(0.05, boom)
            yield wheel.schedule(0.10, lambda: fired.append(True))

        run_sim(driver())
        assert fired == [True]
        assert wheel.action_errors == 1


class TestCancellation:
    def test_cancel_before_fire_suppresses_the_action(self):
        wheel = TimerWheel()
        fired = []

        @do
        def driver():
            keep = yield wheel.schedule(0.10, lambda: fired.append("keep"))
            drop = yield wheel.schedule(0.05, lambda: fired.append("drop"))
            drop.cancel()
            assert keep is not drop

        run_sim(driver())
        assert fired == ["keep"]
        assert wheel.cancelled == 1
        assert wheel.fired == 1

    def test_cancel_after_fire_is_a_noop(self):
        wheel = TimerWheel()
        handles = []

        @do
        def driver():
            handle = yield wheel.schedule(0.01, lambda: None)
            handles.append(handle)

        run_sim(driver())
        (handle,) = handles
        assert handle.fired
        handle.cancel()  # must not raise or un-fire
        assert wheel.fired == 1
        assert wheel.cancelled == 0

    def test_cancellation_ordering_interleaved(self):
        # Cancel every other timer of a batch: exactly the survivors
        # fire, still in deadline order.
        wheel = TimerWheel()
        fired: list[int] = []

        @do
        def driver():
            handles = []
            for index in range(6):
                handle = yield wheel.schedule(
                    0.05 + index * 0.05,
                    (lambda i: lambda: fired.append(i))(index),
                )
                handles.append(handle)
            for index in (1, 3, 5):
                handles[index].cancel()

        run_sim(driver())
        assert fired == [0, 2, 4]
        assert wheel.cancelled == 3


class TestSleeperLifecycle:
    def test_one_sleeper_serves_many_timers(self):
        wheel = TimerWheel()
        count = 50

        @do
        def driver():
            for index in range(count):
                yield wheel.schedule(0.05 + index * 0.001, lambda: None)

        run_sim(driver())
        assert wheel.scheduled == count
        assert wheel.fired == count
        # The whole batch shared one sleeper thread: no thread per timer.
        assert wheel.sleeper_spawns == 1
        assert not wheel.running
        assert wheel.armed == 0

    def test_sleeper_exits_when_idle_and_respawns_on_demand(self):
        wheel = TimerWheel()
        stages = []

        @do
        def first():
            yield wheel.schedule(0.02, lambda: stages.append("a"))

        @do
        def second():
            yield wheel.schedule(0.02, lambda: stages.append("b"))

        rt = SimRuntime()
        rt.spawn(first(), name="first")
        rt.run_all()  # wheel drains, sleeper exits
        assert not wheel.running
        rt.spawn(second(), name="second")
        rt.run_all()
        assert stages == ["a", "b"]
        assert wheel.sleeper_spawns == 2

    def test_recurring_action_reschedules_on_the_same_sleeper(self):
        wheel = TimerWheel()
        ticks = []

        @do
        def tick():
            ticks.append(len(ticks))
            if len(ticks) < 5:
                yield wheel.schedule(0.05, tick)
            else:
                yield pure(None)

        @do
        def driver():
            yield wheel.schedule(0.05, tick)

        run_sim(driver())
        assert ticks == [0, 1, 2, 3, 4]
        assert wheel.sleeper_spawns == 1


class TestEarliestDeadlineWake:
    def test_far_deadline_costs_one_wakeup_not_ticks(self):
        # A single far deadline used to cost ~deadline/tick sleeper
        # wakeups; the wake channel sleeps exactly to it.
        wheel = TimerWheel()
        fired = []

        @do
        def driver():
            yield wheel.schedule(10.0, lambda: fired.append(True))

        run_sim(driver())
        assert fired == [True]
        assert wheel.wakeups == 1
        assert wheel.alarm_spawns == 1

    def test_earlier_schedule_retargets_a_parked_sleeper(self):
        from repro.core.syscalls import sys_sleep

        wheel = TimerWheel()
        fired: list[str] = []

        @do
        def driver():
            yield wheel.schedule(10.0, lambda: fired.append("far"))
            # Let the sleeper park toward the far deadline, then arm an
            # earlier one: the wake channel must re-target it.
            yield sys_sleep(0.01)
            yield wheel.schedule(0.05, lambda: fired.append("near"))

        run_sim(driver())
        assert fired == ["near", "far"]
        # One wake per deadline plus the early re-target wake.
        assert wheel.wakeups <= 3

    def test_cancelled_far_entry_is_dropped_without_firing(self):
        # A far entry cancelled while armed is discarded at its deadline
        # (lazy cancellation) without ever running the action.
        wheel = TimerWheel()
        fired: list[str] = []
        handles: list = []

        @do
        def cancel_far():
            fired.append("early")
            handles[0].cancel()

        @do
        def driver():
            far = yield wheel.schedule(10.0, lambda: fired.append("far"))
            handles.append(far)
            yield wheel.schedule(0.05, cancel_far)

        run_sim(driver())
        assert fired == ["early"]
        assert wheel.cancelled == 1
        assert not wheel.running
        assert wheel.armed == 0


class TestLiveSmoke:
    def test_fires_on_the_wall_clock(self):
        rt = LiveRuntime(uncaught="store")
        try:
            wheel = rt.timers
            assert isinstance(wheel, TimerWheel)
            fired = []

            @do
            def driver():
                yield wheel.schedule(0.02, lambda: fired.append(True))

            rt.spawn(driver(), name="driver")
            rt.run(until=lambda: bool(fired), idle_timeout=5.0)
            assert fired == [True]
        finally:
            rt.shutdown()

    def test_early_wake_beats_a_far_park_on_the_wall_clock(self):
        import time

        rt = LiveRuntime(uncaught="store")
        try:
            wheel = rt.timers
            fired = []
            far_handles = []

            @do
            def driver():
                far = yield wheel.schedule(30.0, lambda: None)
                far_handles.append(far)
                yield wheel.schedule(0.02, lambda: fired.append(True))

            started = time.monotonic()
            rt.spawn(driver(), name="driver")
            rt.run(until=lambda: bool(fired), idle_timeout=5.0)
            # The near timer fires promptly even though the sleeper was
            # (or was about to be) parked toward a 30 s deadline.
            assert fired == [True]
            assert time.monotonic() - started < 2.0
            far_handles[0].cancel()
        finally:
            rt.shutdown()
