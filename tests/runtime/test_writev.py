"""Vectored I/O: ``NetIO.writev``/``write_all_v`` semantics.

Unit level uses fake backends (deterministic partial writes, no kernel);
integration level uses the live backend's real ``sendmsg`` over a
socketpair, including the EAGAIN / partial-write resume path.
"""

from __future__ import annotations

import socket

from repro.core.do_notation import do
from repro.core.scheduler import run_threads
from repro.runtime.io_api import NetIO
from repro.runtime.live_runtime import HAS_SENDMSG, LiveRuntime
from repro.simos.errors import WOULD_BLOCK


class _VecBackend:
    """A scatter-gather backend that accepts at most ``cap`` bytes per
    ``nb_writev`` call — forcing mid-iovec (and mid-buffer) resumes."""

    def __init__(self, cap: int = 1 << 30) -> None:
        self.cap = cap
        self.written = bytearray()
        self.writev_calls = 0
        self.writev_iovs: list[int] = []
        self.write_calls = 0

    def nb_writev(self, fd, bufs):
        self.writev_calls += 1
        self.writev_iovs.append(len(bufs))
        accepted = 0
        for buf in bufs:
            take = min(len(buf), self.cap - accepted)
            self.written.extend(bytes(buf[:take]))
            accepted += take
            if accepted >= self.cap:
                break
        return accepted

    def nb_write(self, fd, data):
        self.write_calls += 1
        self.written.extend(data)
        return len(data)


class _JoinOnlyBackend:
    """No ``nb_writev`` at all: the fallback join+write path must run."""

    def __init__(self) -> None:
        self.written = bytearray()
        self.write_calls = 0

    def nb_write(self, fd, data):
        self.write_calls += 1
        self.written.extend(data)
        return len(data)


def _run(comp) -> None:
    run_threads([comp])


class TestWriteAllV:
    def test_whole_iovec_in_one_call(self):
        backend = _VecBackend()
        io = NetIO(backend)
        bufs = [b"header: 12\r\n\r\n", b"the-body", b"!"]
        results = []

        @do
        def writer():
            count = yield io.write_all_v("fd", bufs)
            results.append(count)

        _run(writer())
        assert bytes(backend.written) == b"".join(bufs)
        assert results == [len(b"".join(bufs))]
        assert backend.writev_calls == 1
        assert backend.writev_iovs == [3]
        assert backend.write_calls == 0

    def test_partial_writev_resumes_mid_iovec(self):
        # 5 bytes per syscall against buffers of lengths 4/6/3: resumes
        # land mid-buffer and mid-iovec; the byte stream must still be
        # exact and in order.
        backend = _VecBackend(cap=5)
        io = NetIO(backend)
        bufs = [b"aaaa", b"bbbbbb", b"ccc"]

        @do
        def writer():
            yield io.write_all_v("fd", bufs)

        _run(writer())
        assert bytes(backend.written) == b"aaaabbbbbbccc"
        assert backend.writev_calls == 3  # ceil(13 / 5)
        # Later calls carry only the unsent suffix of the iovec.
        assert backend.writev_iovs[0] == 3
        assert backend.writev_iovs[-1] <= 2

    def test_empty_buffers_are_skipped(self):
        backend = _VecBackend()
        io = NetIO(backend)
        results = []

        @do
        def writer():
            count = yield io.write_all_v("fd", [b"", b"xy", b"", b"z"])
            results.append(count)

        _run(writer())
        assert bytes(backend.written) == b"xyz"
        assert results == [3]

    def test_all_empty_is_a_zero_byte_noop(self):
        backend = _VecBackend()
        io = NetIO(backend)
        results = []

        @do
        def writer():
            count = yield io.write_all_v("fd", [b"", b""])
            results.append(count)

        _run(writer())
        assert results == [0]
        assert backend.writev_calls == 0

    def test_fallback_without_nb_writev_joins(self):
        backend = _JoinOnlyBackend()
        io = NetIO(backend)
        results = []

        @do
        def writer():
            count = yield io.write_all_v("fd", [b"head", b"body"])
            results.append(count)

        _run(writer())
        assert bytes(backend.written) == b"headbody"
        assert results == [8]
        assert backend.write_calls == 1

    def test_none_nb_writev_attribute_forces_fallback(self):
        # The live backend sets ``nb_writev = None`` on platforms
        # without sendmsg; NetIO must treat that like a missing method.
        backend = _VecBackend()
        backend.nb_writev = None  # type: ignore[assignment]
        io = NetIO(backend)

        @do
        def writer():
            yield io.write_all_v("fd", [b"a", b"b"])

        _run(writer())
        assert bytes(backend.written) == b"ab"
        assert backend.write_calls == 1
        assert backend.writev_calls == 0

    def test_writev_single_shot_returns_count(self):
        backend = _VecBackend(cap=3)
        io = NetIO(backend)
        results = []

        @do
        def writer():
            count = yield io.writev("fd", [b"abcd", b"ef"])
            results.append(count)

        _run(writer())
        assert results == [3]
        assert bytes(backend.written) == b"abc"


class TestLiveSendmsg:
    def test_gathered_write_over_a_real_socketpair(self):
        # Push well past the socket buffer so the EAGAIN park/resume and
        # mid-iovec restarts all run against the real kernel.
        assert HAS_SENDMSG, "test matrix runs on Linux (sendmsg present)"
        rt = LiveRuntime(uncaught="store")
        left, right = socket.socketpair()
        left.setblocking(False)
        right.setblocking(False)
        try:
            chunk = bytes(range(256)) * 64  # 16 KiB
            bufs = [chunk] * 24             # 384 KiB total
            total = sum(len(b) for b in bufs)
            received = bytearray()
            done = []

            @do
            def writer():
                count = yield rt.io.write_all_v(left, bufs)
                done.append(count)

            @do
            def reader():
                while len(received) < total:
                    data = yield rt.io.read(right, 65536)
                    if not data:
                        break
                    received.extend(data)

            rt.spawn(writer(), name="writer")
            rt.spawn(reader(), name="reader")
            rt.run(until=lambda: len(received) >= total and bool(done),
                   idle_timeout=10.0)
            assert done == [total]
            assert bytes(received) == b"".join(bufs)
            assert rt.backend.writev_calls >= 1
            # The gather actually engaged: sendmsg carried multiple
            # buffers per syscall on average.
            assert rt.backend.writev_bufs > rt.backend.writev_calls
        finally:
            left.close()
            right.close()
            rt.shutdown()

    def test_writes_would_block_counts_syscalls(self):
        backend = _VecBackend()
        original = backend.nb_writev
        attempts = []

        def flaky(fd, bufs):
            attempts.append(1)
            if len(attempts) == 1:
                return WOULD_BLOCK
            return original(fd, bufs)

        backend.nb_writev = flaky  # type: ignore[assignment]
        rt = LiveRuntime(uncaught="store")
        left, right = socket.socketpair()
        left.setblocking(False)
        try:
            io = NetIO(backend)
            done = []

            @do
            def writer():
                # ``fd`` must be pollable for the EAGAIN park: use the
                # real socket even though the fake backend ignores it.
                count = yield io.write_all_v(left, [b"xy", b"z"])
                done.append(count)

            rt.spawn(writer(), name="writer")
            rt.run(until=lambda: bool(done), idle_timeout=5.0)
            assert done == [3]
            assert bytes(backend.written) == b"xyz"
            assert len(attempts) == 2  # EAGAIN retry went back to writev
        finally:
            left.close()
            right.close()
            rt.shutdown()
