"""Virtual clock: ordering, cancellation, CPU consumption."""

from __future__ import annotations

import pytest

from repro.simos.clock import VirtualClock


class TestScheduling:
    def test_events_fire_in_time_order(self):
        clock = VirtualClock()
        log = []
        clock.schedule(2.0, lambda: log.append("b"))
        clock.schedule(1.0, lambda: log.append("a"))
        clock.schedule(3.0, lambda: log.append("c"))
        clock.run_until_idle()
        assert log == ["a", "b", "c"]
        assert clock.now == 3.0

    def test_ties_break_by_insertion_order(self):
        clock = VirtualClock()
        log = []
        for tag in "abc":
            clock.schedule(1.0, lambda t=tag: log.append(t))
        clock.run_until_idle()
        assert log == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute(self):
        clock = VirtualClock()
        seen = []
        clock.schedule_at(5.0, lambda: seen.append(clock.now))
        clock.run_until_idle()
        assert seen == [5.0]

    def test_cancellation(self):
        clock = VirtualClock()
        log = []
        handle = clock.schedule(1.0, lambda: log.append("cancelled"))
        clock.schedule(2.0, lambda: log.append("kept"))
        handle.cancel()
        clock.run_until_idle()
        assert log == ["kept"]

    def test_cancel_idempotent(self):
        clock = VirtualClock()
        handle = clock.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert clock.run_until_idle() == 0

    def test_events_scheduled_during_events(self):
        clock = VirtualClock()
        log = []

        def first():
            log.append(("first", clock.now))
            clock.schedule(0.5, lambda: log.append(("second", clock.now)))

        clock.schedule(1.0, first)
        clock.run_until_idle()
        assert log == [("first", 1.0), ("second", 1.5)]


class TestConsume:
    def test_consume_advances_time(self):
        clock = VirtualClock()
        clock.consume(0.25)
        assert clock.now == 0.25
        assert clock.cpu_consumed == 0.25

    def test_consume_negative_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.consume(-0.1)

    def test_overdue_events_fire_at_current_time(self):
        """CPU running past a deadline delays the event (busy core)."""
        clock = VirtualClock()
        seen = []
        clock.schedule(1.0, lambda: seen.append(clock.now))
        clock.consume(5.0)
        clock.advance()
        assert seen == [5.0]  # fired late, at the post-consume time

    def test_run_due_only_fires_due_events(self):
        clock = VirtualClock()
        log = []
        clock.schedule(1.0, lambda: log.append("due"))
        clock.schedule(10.0, lambda: log.append("future"))
        clock.consume(2.0)
        assert clock.run_due() == 1
        assert log == ["due"]


class TestIntrospection:
    def test_next_event_time(self):
        clock = VirtualClock()
        assert clock.next_event_time() is None
        clock.schedule(3.0, lambda: None)
        assert clock.next_event_time() == 3.0

    def test_next_event_skips_cancelled(self):
        clock = VirtualClock()
        first = clock.schedule(1.0, lambda: None)
        clock.schedule(2.0, lambda: None)
        first.cancel()
        assert clock.next_event_time() == 2.0

    def test_has_events(self):
        clock = VirtualClock()
        assert not clock.has_events()
        handle = clock.schedule(1.0, lambda: None)
        assert clock.has_events()
        handle.cancel()
        assert not clock.has_events()
