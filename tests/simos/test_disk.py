"""Disk model: service times, C-LOOK correctness, elevator throughput gains."""

from __future__ import annotations

import random

import pytest

from repro.simos.clock import VirtualClock
from repro.simos.disk import DiskModel
from repro.simos.params import SimParams


def make_disk(policy="clook", **overrides):
    params = SimParams().with_overrides(**overrides)
    clock = VirtualClock()
    return clock, DiskModel(clock, params, policy=policy), params


class TestServiceModel:
    def test_seek_time_monotone_in_distance(self):
        params = SimParams()
        times = [params.seek_time(d) for d in (0, 10**6, 10**8, 10**10)]
        assert times == sorted(times)
        assert times[0] == 0.0

    def test_seek_bounded_by_max(self):
        params = SimParams()
        assert params.seek_time(params.disk_span_bytes) <= params.disk_seek_max

    def test_service_time_includes_all_terms(self):
        params = SimParams()
        service = params.disk_service_time(0, 4096)
        expected_floor = (
            params.disk_rotation
            + 4096 / params.disk_transfer_rate
            + params.disk_overhead
        )
        assert service == pytest.approx(expected_floor)


class TestCompletion:
    def test_single_request_completes(self):
        clock, disk, params = make_disk()
        done = []
        disk.submit(1000, 4096, lambda: done.append(clock.now))
        clock.run_until_idle()
        assert len(done) == 1
        assert done[0] > 0
        assert disk.stats.completed == 1
        assert disk.stats.bytes_moved == 4096

    def test_head_moves_to_end_of_transfer(self):
        clock, disk, _params = make_disk()
        disk.submit(5000, 1000, lambda: None)
        clock.run_until_idle()
        assert disk.head == 6000

    def test_all_requests_complete_exactly_once(self):
        clock, disk, _params = make_disk()
        done = []
        for i in range(50):
            disk.submit(i * 10_000, 512, lambda i=i: done.append(i))
        clock.run_until_idle()
        assert sorted(done) == list(range(50))

    def test_invalid_requests_rejected(self):
        _clock, disk, _params = make_disk()
        with pytest.raises(ValueError):
            disk.submit(-1, 10, lambda: None)
        with pytest.raises(ValueError):
            disk.submit(0, 0, lambda: None)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_disk(policy="sstf")

    def test_completion_callback_can_resubmit(self):
        clock, disk, _params = make_disk()
        completions = []

        def chain(remaining):
            completions.append(remaining)
            if remaining > 0:
                disk.submit(remaining * 1000, 256, lambda: chain(remaining - 1))

        disk.submit(10_000, 256, lambda: chain(3))
        clock.run_until_idle()
        assert completions == [3, 2, 1, 0]


class TestFlushBarrier:
    def test_flush_on_idle_disk_costs_only_drain_time(self):
        clock, disk, params = make_disk()
        done = []
        disk.flush(lambda: done.append(clock.now))
        clock.run_until_idle()
        assert done == [pytest.approx(params.disk_flush_time)]
        assert disk.stats.flushes == 1

    def test_flush_waits_for_prior_writes_only(self):
        clock, disk, _params = make_disk()
        order = []
        disk.submit(1000, 512, lambda: order.append("w1"), is_write=True)
        disk.submit(2000, 512, lambda: order.append("w2"), is_write=True)
        disk.flush(lambda: order.append("barrier"))
        # Submitted after the flush: the barrier does not wait for it,
        # but the spindle serves it while the cache drains.
        disk.submit(3000, 512, lambda: order.append("w3"), is_write=True)
        clock.run_until_idle()
        assert order.index("barrier") > order.index("w1")
        assert order.index("barrier") > order.index("w2")
        assert "w3" in order

    def test_group_commit_amortises_the_barrier(self):
        # One barrier over N writes costs far less than N write+barrier
        # pairs: the economics the WAL's group commit banks on.
        clock, disk, params = make_disk()
        for i in range(16):
            disk.submit(i * 4096, 512, lambda: None, is_write=True)
        disk.flush(lambda: None)
        clock.run_until_idle()
        grouped = clock.now

        clock2, disk2, _ = make_disk()
        state = {"i": 0}

        def next_write():
            if state["i"] < 16:
                offset = state["i"] * 4096
                state["i"] += 1
                disk2.submit(offset, 512,
                             lambda: disk2.flush(next_write),
                             is_write=True)

        next_write()
        clock2.run_until_idle()
        per_record = clock2.now
        assert disk2.stats.flushes == 16
        assert disk.stats.flushes == 1
        assert per_record > grouped + 15 * params.disk_flush_time * 0.99


class TestClook:
    def test_serves_in_sweep_order(self):
        clock, disk, _params = make_disk()
        order = []
        # Stall the disk with one request, then queue out-of-order offsets.
        disk.submit(0, 64, lambda: order.append("seed"))
        for offset in (9_000_000, 3_000_000, 6_000_000):
            disk.submit(offset, 64, lambda o=offset: order.append(o))
        clock.run_until_idle()
        assert order == ["seed", 3_000_000, 6_000_000, 9_000_000]

    def test_wraps_to_lowest_offset(self):
        clock, disk, _params = make_disk()
        order = []
        disk.submit(5_000_000, 64, lambda: order.append(5_000_000))
        # After serving 5M the head is past 1M and 2M: sweep must wrap.
        disk.submit(1_000_000, 64, lambda: order.append(1_000_000))
        disk.submit(2_000_000, 64, lambda: order.append(2_000_000))
        disk.submit(8_000_000, 64, lambda: order.append(8_000_000))
        clock.run_until_idle()
        assert order == [5_000_000, 8_000_000, 1_000_000, 2_000_000]

    def test_fcfs_serves_in_arrival_order(self):
        clock, disk, _params = make_disk(policy="fcfs")
        order = []
        disk.submit(0, 64, lambda: order.append("seed"))
        for offset in (9_000_000, 3_000_000, 6_000_000):
            disk.submit(offset, 64, lambda o=offset: order.append(o))
        clock.run_until_idle()
        assert order == ["seed", 9_000_000, 3_000_000, 6_000_000]


class TestElevatorEffect:
    """The mechanism behind Figure 17: deeper queues => higher throughput."""

    @staticmethod
    def run_random_reads(policy: str, depth: int, total_requests: int = 400):
        clock, disk, params = make_disk(policy=policy)
        rng = random.Random(42)
        span = 1 * 1024 * 1024 * 1024  # random reads within a 1GB file
        base = params.disk_span_bytes // 16
        state = {"submitted": 0, "completed": 0}

        def submit_one():
            if state["submitted"] >= total_requests:
                return
            state["submitted"] += 1
            offset = base + rng.randrange(0, span - 4096)

            def complete():
                state["completed"] += 1
                submit_one()

            disk.submit(offset, 4096, complete)

        for _ in range(depth):
            submit_one()
        clock.run_until_idle()
        assert state["completed"] == total_requests
        return disk.stats.bytes_moved / clock.now  # bytes/sec

    def test_clook_throughput_rises_with_depth(self):
        t1 = self.run_random_reads("clook", 1)
        t16 = self.run_random_reads("clook", 16)
        t128 = self.run_random_reads("clook", 128)
        assert t16 > t1 * 1.05
        assert t128 > t16

    def test_fcfs_gains_nothing_from_depth(self):
        t1 = self.run_random_reads("fcfs", 1)
        t128 = self.run_random_reads("fcfs", 128)
        assert t128 == pytest.approx(t1, rel=0.10)

    def test_clook_beats_fcfs_at_depth(self):
        clook = self.run_random_reads("clook", 256, total_requests=1200)
        fcfs = self.run_random_reads("fcfs", 256, total_requests=1200)
        assert clook > fcfs * 1.15

    def test_paper_operating_point_qd1(self):
        """Queue depth 1 should land near the paper's ~0.53 MB/s."""
        throughput = self.run_random_reads("clook", 1)
        mbps = throughput / (1024 * 1024)
        assert 0.35 <= mbps <= 0.75

    def test_mean_latency_accounted(self):
        clock, disk, _params = make_disk()
        for i in range(10):
            disk.submit(i * 1_000_000, 4096, lambda: None)
        clock.run_until_idle()
        assert disk.stats.mean_latency > 0
        assert disk.stats.max_queue_depth >= 9
