"""Filesystem, page cache, stream network, packet links, epoll, AIO."""

from __future__ import annotations

import pytest

from repro.core.events import EVENT_READ, EVENT_WRITE
from repro.simos.errors import WOULD_BLOCK, BadFileError, SimOsError
from repro.simos.kernel import SimKernel
from repro.simos.net import PacketLink
from repro.simos.params import SimParams


class TestFileSystem:
    def make(self):
        return SimKernel()

    def test_create_open_size(self):
        kernel = self.make()
        kernel.fs.create_file("data.bin", 1000)
        assert kernel.fs.exists("data.bin")
        assert kernel.fs.file_size("data.bin") == 1000
        handle = kernel.fs.open("data.bin")
        assert handle.size == 1000

    def test_duplicate_create_rejected(self):
        kernel = self.make()
        kernel.fs.create_file("a", 10)
        with pytest.raises(SimOsError):
            kernel.fs.create_file("a", 10)

    def test_open_missing_raises(self):
        kernel = self.make()
        with pytest.raises(BadFileError):
            kernel.fs.open("ghost")

    def test_content_deterministic(self):
        kernel = self.make()
        kernel.fs.create_file("f", 8192)
        handle = kernel.fs.open("f")
        first = handle.content_at(100, 50)
        second = handle.content_at(100, 50)
        assert first == second
        assert len(first) == 50

    def test_direct_read_roundtrip(self):
        kernel = self.make()
        kernel.fs.create_file("f", 8192)
        handle = kernel.fs.open("f")
        got = []
        handle.pread_direct(0, 4096, got.append)
        kernel.clock.run_until_idle()
        assert len(got) == 1
        assert got[0] == handle.content_at(0, 4096)

    def test_read_past_eof_returns_empty(self):
        kernel = self.make()
        kernel.fs.create_file("f", 100)
        handle = kernel.fs.open("f")
        got = []
        handle.pread_direct(100, 10, got.append)
        kernel.clock.run_until_idle()
        assert got == [b""]

    def test_read_clamped_at_eof(self):
        kernel = self.make()
        kernel.fs.create_file("f", 100)
        handle = kernel.fs.open("f")
        got = []
        handle.pread_direct(90, 100, got.append)
        kernel.clock.run_until_idle()
        assert len(got[0]) == 10

    def test_closed_file_rejects_reads(self):
        kernel = self.make()
        kernel.fs.create_file("f", 100)
        handle = kernel.fs.open("f")
        handle.close()
        with pytest.raises(BadFileError):
            handle.pread_direct(0, 10, lambda data: None)


class TestPageCache:
    def test_buffered_read_misses_then_hits(self):
        kernel = SimKernel()
        kernel.fs.create_file("f", 64 * 1024)
        handle = kernel.fs.open("f")
        cache = kernel.fs.page_cache
        got = []
        handle.pread_buffered(0, 4096, got.append)
        kernel.clock.run_until_idle()
        miss_disk_ops = kernel.disk.stats.completed
        handle.pread_buffered(0, 4096, got.append)
        kernel.clock.run_until_idle()
        assert kernel.disk.stats.completed == miss_disk_ops  # hit: no disk I/O
        assert cache.hits >= 1 and cache.misses >= 1
        assert got[0] == got[1]

    def test_flush_forces_miss(self):
        kernel = SimKernel()
        kernel.fs.create_file("f", 64 * 1024)
        handle = kernel.fs.open("f")
        done = []
        handle.pread_buffered(0, 4096, done.append)
        kernel.clock.run_until_idle()
        kernel.fs.flush_page_cache()
        before = kernel.disk.stats.completed
        handle.pread_buffered(0, 4096, done.append)
        kernel.clock.run_until_idle()
        assert kernel.disk.stats.completed == before + 1

    def test_lru_eviction(self):
        params = SimParams().with_overrides(page_cache_bytes=2 * 4096)
        kernel = SimKernel(params)
        kernel.fs.create_file("f", 64 * 1024)
        handle = kernel.fs.open("f")
        for page in (0, 1, 2):  # page 0 evicted by page 2
            handle.pread_buffered(page * 4096, 4096, lambda d: None)
            kernel.clock.run_until_idle()
        before = kernel.disk.stats.completed
        handle.pread_buffered(0, 4096, lambda d: None)
        kernel.clock.run_until_idle()
        assert kernel.disk.stats.completed == before + 1  # page 0 was evicted


class TestStreamNetwork:
    def test_roundtrip_through_listener(self):
        kernel = SimKernel()
        listener = kernel.net.listen()
        client = kernel.net.connect(listener)
        server = listener.accept()
        assert server is not WOULD_BLOCK

        client.write(b"ping")
        kernel.clock.run_until_idle()
        assert server.read(100) == b"ping"
        server.write(b"pong")
        kernel.clock.run_until_idle()
        assert client.read(100) == b"pong"

    def test_accept_empty_would_block(self):
        kernel = SimKernel()
        listener = kernel.net.listen()
        assert listener.accept() is WOULD_BLOCK

    def test_listener_readiness(self):
        kernel = SimKernel()
        listener = kernel.net.listen()
        fired = []
        listener.add_waiter(EVENT_READ, lambda mask: fired.append(mask))
        kernel.net.connect(listener)
        assert fired == [EVENT_READ]

    def test_bandwidth_caps_transfer_rate(self):
        kernel = SimKernel()
        a, b = kernel.net.socketpair()
        total = 1024 * 1024  # 1MB
        sent = 0
        received = 0
        while received < total:
            while sent < total:
                wrote = a.write(b"x" * min(16384, total - sent))
                if wrote is WOULD_BLOCK:
                    break
                sent += wrote
            if not kernel.clock.advance():
                break
            while True:
                data = b.read(65536)
                if data is WOULD_BLOCK or not data:
                    break
                received += len(data)
        assert received == total
        # 1MB over 100Mbps should take >= ~0.08s of virtual time.
        expected_min = total / kernel.params.net_bandwidth
        assert kernel.clock.now >= expected_min * 0.99

    def test_eof_delivered_after_data(self):
        kernel = SimKernel()
        a, b = kernel.net.socketpair()
        a.write(b"last words")
        a.close()
        kernel.clock.run_until_idle()
        assert b.read(100) == b"last words"
        assert b.read(100) == b""

    def test_read_empty_would_block(self):
        kernel = SimKernel()
        a, b = kernel.net.socketpair()
        assert b.read(10) is WOULD_BLOCK


class TestPacketLink:
    def make_link(self, **kwargs):
        kernel = SimKernel()
        link = PacketLink(
            kernel.clock, bandwidth=1e6, latency=0.001, **kwargs
        )
        return kernel, link

    def test_delivery(self):
        kernel, link = self.make_link()
        got = []
        link.on_deliver = got.append
        link.send(b"packet-1")
        kernel.clock.run_until_idle()
        assert got == [b"packet-1"]

    def test_loss(self):
        kernel, link = self.make_link(loss=1.0)
        got = []
        link.on_deliver = got.append
        link.send(b"doomed")
        kernel.clock.run_until_idle()
        assert got == []
        assert link.dropped == 1

    def test_duplication(self):
        kernel, link = self.make_link(duplicate=1.0)
        got = []
        link.on_deliver = got.append
        link.send(b"twice")
        kernel.clock.run_until_idle()
        assert got == [b"twice", b"twice"]

    def test_statistical_loss_rate(self):
        kernel, link = self.make_link(loss=0.3, seed=7)
        got = []
        link.on_deliver = got.append
        for i in range(1000):
            link.send(b"p%d" % i)
        kernel.clock.run_until_idle()
        assert 600 <= len(got) <= 800  # ~70% of 1000

    def test_jitter_reorders(self):
        kernel, link = self.make_link(jitter=0.5, seed=3)
        got = []
        link.on_deliver = got.append
        for i in range(20):
            link.send(("pkt", i, 100))
        kernel.clock.run_until_idle()
        order = [i for (_tag, i, _size) in got]
        assert sorted(order) == list(range(20))
        assert order != list(range(20))  # some reordering happened

    def test_object_packets_use_wire_size(self):
        class Segment:
            wire_size = 500

        kernel, link = self.make_link()
        got = []
        link.on_deliver = got.append
        seg = Segment()
        link.send(seg)
        kernel.clock.run_until_idle()
        assert got == [seg]


class TestEpollAndAio:
    def test_epoll_harvest_batches(self):
        kernel = SimKernel()
        epoll = kernel.make_epoll()
        r1, w1 = kernel.make_pipe()
        r2, w2 = kernel.make_pipe()
        epoll.register(r1, EVENT_READ, "conn-1")
        epoll.register(r2, EVENT_READ, "conn-2")
        assert epoll.harvest() == []
        w1.write(b"x")
        w2.write(b"y")
        events = dict(epoll.harvest())
        assert set(events) == {"conn-1", "conn-2"}

    def test_epoll_on_ready_fires_once_per_batch(self):
        kernel = SimKernel()
        wakeups = []
        epoll = kernel.make_epoll(on_ready=lambda: wakeups.append(1))
        r, w = kernel.make_pipe()
        r2, w2 = kernel.make_pipe()
        epoll.register(r, EVENT_READ, "a")
        epoll.register(r2, EVENT_READ, "b")
        w.write(b"x")
        w2.write(b"y")
        assert len(wakeups) == 1  # second event found a non-empty queue

    def test_epoll_idle_interest_is_free(self):
        kernel = SimKernel()
        epoll = kernel.make_epoll()
        for _ in range(1000):
            r, _w = kernel.make_pipe()
            epoll.register(r, EVENT_READ, r)
        assert epoll.interested == 1000
        assert epoll.pending_events == 0

    def test_aio_read_completion(self):
        kernel = SimKernel()
        kernel.fs.create_file("f", 16384)
        handle = kernel.fs.open("f")
        aio = kernel.make_aio()
        aio.submit_read(handle, 0, 4096, token="req-1")
        assert aio.in_flight == 1
        kernel.clock.run_until_idle()
        completions = aio.harvest()
        assert len(completions) == 1
        token, data = completions[0]
        assert token == "req-1"
        assert data == handle.content_at(0, 4096)
        assert aio.in_flight == 0

    def test_aio_multiple_outstanding(self):
        kernel = SimKernel()
        kernel.fs.create_file("f", 1024 * 1024)
        handle = kernel.fs.open("f")
        aio = kernel.make_aio()
        for i in range(10):
            aio.submit_read(handle, i * 4096, 4096, token=i)
        kernel.clock.run_until_idle()
        tokens = sorted(token for token, _data in aio.harvest())
        assert tokens == list(range(10))


class TestKernelMemory:
    def test_alloc_free(self):
        kernel = SimKernel()
        kernel.alloc_ram(1024)
        assert kernel.ram_used == 1024
        kernel.free_ram(1024)
        assert kernel.ram_used == 0

    def test_oom(self):
        from repro.simos.errors import OutOfMemoryError

        params = SimParams().with_overrides(ram_bytes=1000)
        kernel = SimKernel(params)
        kernel.alloc_ram(900)
        with pytest.raises(OutOfMemoryError):
            kernel.alloc_ram(200)

    def test_pressure(self):
        params = SimParams().with_overrides(ram_bytes=1000)
        kernel = SimKernel(params)
        kernel.alloc_ram(500)
        assert kernel.memory_pressure == pytest.approx(0.5)
