"""The NPTL kernel-thread baseline: blocking syscalls, costs, memory cap."""

from __future__ import annotations

import pytest

from repro.simos.errors import OutOfMemoryError, WOULD_BLOCK
from repro.simos.kernel import SimKernel
from repro.simos.nptl import (
    KAccept,
    KPread,
    KRead,
    KSleep,
    KWrite,
    KYield,
    NptlSim,
)
from repro.simos.params import SimParams


class TestBasics:
    def test_thread_runs_to_completion(self):
        kernel = SimKernel()
        sim = NptlSim(kernel)
        log = []

        def worker():
            log.append("start")
            yield KYield()
            log.append("end")
            return "result"

        thread = sim.spawn(worker())
        sim.run()
        assert log == ["start", "end"]
        assert thread.state == "done"
        assert thread.result == "result"

    def test_sleep_advances_clock(self):
        kernel = SimKernel()
        sim = NptlSim(kernel)

        def sleeper():
            yield KSleep(1.5)

        sim.spawn(sleeper())
        sim.run()
        assert kernel.clock.now >= 1.5

    def test_yield_interleaves_threads(self):
        kernel = SimKernel()
        sim = NptlSim(kernel)
        log = []

        def worker(tag):
            for _ in range(3):
                log.append(tag)
                yield KYield()

        sim.spawn(worker("a"))
        sim.spawn(worker("b"))
        sim.run()
        assert log == ["a", "b", "a", "b", "a", "b"]

    def test_syscalls_charge_cpu(self):
        kernel = SimKernel()
        sim = NptlSim(kernel)

        def worker():
            for _ in range(10):
                yield KYield()

        sim.spawn(worker())
        sim.run()
        assert kernel.clock.cpu_consumed > 0
        assert sim.syscalls >= 10
        assert sim.context_switches >= 10


class TestBlockingIO:
    def test_blocking_read_waits_for_writer(self):
        kernel = SimKernel()
        sim = NptlSim(kernel)
        r, w = kernel.make_pipe()
        log = []

        def reader():
            data = yield KRead(r, 100)
            log.append(("read", data))

        def writer():
            yield KSleep(0.01)
            count = yield KWrite(w, b"hello")
            log.append(("wrote", count))

        sim.spawn(reader())
        sim.spawn(writer())
        sim.run()
        assert ("read", b"hello") in log
        assert ("wrote", 5) in log

    def test_blocking_write_waits_for_drain(self):
        kernel = SimKernel()
        sim = NptlSim(kernel)
        r, w = kernel.make_pipe()  # 4KB buffer
        progress = []

        def writer():
            first = yield KWrite(w, b"a" * 4096)
            progress.append(first)
            second = yield KWrite(w, b"b" * 100)  # blocks until drained
            progress.append(second)

        def reader():
            yield KSleep(0.05)
            data = yield KRead(r, 4096)
            progress.append(len(data))

        sim.spawn(writer())
        sim.spawn(reader())
        sim.run()
        assert progress == [4096, 4096, 100]

    def test_pread_through_disk(self):
        kernel = SimKernel()
        kernel.fs.create_file("data", 64 * 1024)
        handle = kernel.fs.open("data")
        sim = NptlSim(kernel)
        got = []

        def worker():
            data = yield KPread(handle, 4096, 4096)
            got.append(data)

        sim.spawn(worker())
        sim.run()
        assert got == [handle.content_at(4096, 4096)]
        assert kernel.disk.stats.completed == 1

    def test_accept_blocks_until_connect(self):
        kernel = SimKernel()
        sim = NptlSim(kernel)
        listener = kernel.net.listen()
        got = []

        def server():
            conn = yield KAccept(listener)
            data = yield KRead(conn, 100)
            got.append(data)

        def client():
            yield KSleep(0.001)
            conn = kernel.net.connect(listener)
            yield KWrite(conn, b"hi server")

        sim.spawn(server())
        sim.spawn(client())
        sim.run()
        assert got == [b"hi server"]


class TestMemoryCap:
    def test_stack_accounting(self):
        params = SimParams().with_overrides(ram_bytes=10 * 32 * 1024)
        kernel = SimKernel(params)
        sim = NptlSim(kernel)

        def idle():
            yield KSleep(1.0)

        for _ in range(10):
            sim.spawn(idle())
        with pytest.raises(OutOfMemoryError):
            sim.spawn(idle())

    def test_paper_cap_is_16k_threads(self):
        """512MB RAM / 32KB stacks == 16K threads — §5's NPTL limit."""
        params = SimParams()
        assert params.ram_bytes // params.kernel_stack_bytes == 16384

    def test_can_spawn_reports_capacity(self):
        params = SimParams().with_overrides(ram_bytes=3 * 32 * 1024)
        kernel = SimKernel(params)
        sim = NptlSim(kernel)

        def idle():
            yield KSleep(1.0)

        assert sim.can_spawn(3)
        assert not sim.can_spawn(4)
        sim.spawn(idle())
        assert sim.can_spawn(2)
        assert not sim.can_spawn(3)

    def test_stack_freed_on_exit(self):
        params = SimParams().with_overrides(ram_bytes=2 * 32 * 1024)
        kernel = SimKernel(params)
        sim = NptlSim(kernel)

        def quick():
            return "done"
            yield  # pragma: no cover

        for _ in range(5):  # sequential spawns reuse freed stacks
            sim.spawn(quick())
            sim.run()
        assert sim.finished == 5


class TestPipePingPong:
    def test_conversation_transfers_all_bytes(self):
        """A miniature of the Figure 18 workload: one working pair."""
        kernel = SimKernel()
        sim = NptlSim(kernel)
        r1, w1 = kernel.make_pipe()
        r2, w2 = kernel.make_pipe()
        message = 32 * 1024
        rounds = 4

        def left():
            for _ in range(rounds):
                sent = 0
                while sent < message:
                    sent += yield KWrite(w1, b"x" * min(4096, message - sent))
                got = 0
                while got < message:
                    data = yield KRead(r2, 4096)
                    got += len(data)

        def right():
            for _ in range(rounds):
                got = 0
                while got < message:
                    data = yield KRead(r1, 4096)
                    got += len(data)
                sent = 0
                while sent < message:
                    sent += yield KWrite(w2, b"y" * min(4096, message - sent))

        sim.spawn(left())
        sim.spawn(right())
        sim.run()
        total = r1.pipe.bytes_written + r2.pipe.bytes_written
        assert total == 2 * rounds * message
        assert kernel.clock.now > 0
