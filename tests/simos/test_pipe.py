"""FIFO pipes: EAGAIN, partial writes, EOF, readiness notifications."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.events import EVENT_HUP, EVENT_READ, EVENT_WRITE
from repro.simos.errors import WOULD_BLOCK, BadFileError, BrokenPipeSimError
from repro.simos.pipe import make_pipe


class TestReadWrite:
    def test_roundtrip(self):
        r, w = make_pipe(16)
        assert w.write(b"hello") == 5
        assert r.read(5) == b"hello"

    def test_read_empty_would_block(self):
        r, _w = make_pipe(16)
        assert r.read(4) is WOULD_BLOCK

    def test_partial_write_at_capacity(self):
        r, w = make_pipe(4)
        assert w.write(b"abcdef") == 4
        assert w.write(b"x") is WOULD_BLOCK
        assert r.read(10) == b"abcd"
        assert w.write(b"ef") == 2

    def test_partial_read(self):
        r, w = make_pipe(16)
        w.write(b"abcdef")
        assert r.read(2) == b"ab"
        assert r.read(100) == b"cdef"

    def test_fifo_order(self):
        r, w = make_pipe(1024)
        w.write(b"one")
        w.write(b"two")
        assert r.read(6) == b"onetwo"

    def test_bytes_written_counter(self):
        r, w = make_pipe(8)
        w.write(b"abcd")
        r.read(4)
        w.write(b"efgh")
        assert w.pipe.bytes_written == 8

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            make_pipe(0)


class TestCloseSemantics:
    def test_eof_after_writer_close(self):
        r, w = make_pipe(16)
        w.write(b"tail")
        w.close()
        assert r.read(10) == b"tail"
        assert r.read(10) == b""  # EOF

    def test_read_before_writer_close_blocks(self):
        r, w = make_pipe(16)
        assert r.read(1) is WOULD_BLOCK
        w.close()
        assert r.read(1) == b""

    def test_write_to_closed_reader_raises(self):
        r, w = make_pipe(16)
        r.close()
        with pytest.raises(BrokenPipeSimError):
            w.write(b"x")

    def test_ops_on_closed_end_raise(self):
        r, w = make_pipe(16)
        r.close()
        with pytest.raises(BadFileError):
            r.read(1)
        w.close()
        with pytest.raises(BadFileError):
            w.write(b"x")

    def test_close_idempotent(self):
        r, w = make_pipe(16)
        r.close()
        r.close()
        w.close()
        w.close()


class TestReadiness:
    def test_poll_states(self):
        r, w = make_pipe(4)
        assert r.poll() == 0
        assert w.poll() & EVENT_WRITE
        w.write(b"ab")
        assert r.poll() & EVENT_READ
        w.write(b"cd")
        assert w.poll() == 0  # full
        r.read(4)
        assert w.poll() & EVENT_WRITE

    def test_hup_on_writer_close(self):
        r, w = make_pipe(4)
        w.close()
        assert r.poll() & EVENT_HUP
        assert r.poll() & EVENT_READ  # readable: EOF is observable

    def test_read_waiter_fires_on_write(self):
        r, w = make_pipe(4)
        fired = []
        r.add_waiter(EVENT_READ, lambda mask: fired.append(mask))
        assert fired == []
        w.write(b"x")
        assert fired == [EVENT_READ]

    def test_waiter_fires_immediately_if_ready(self):
        r, w = make_pipe(4)
        w.write(b"x")
        fired = []
        r.add_waiter(EVENT_READ, lambda mask: fired.append(mask))
        assert fired == [EVENT_READ]

    def test_write_waiter_fires_on_drain(self):
        r, w = make_pipe(2)
        w.write(b"ab")  # full
        fired = []
        w.add_waiter(EVENT_WRITE, lambda mask: fired.append(mask))
        assert fired == []
        r.read(1)
        assert fired == [EVENT_WRITE]

    def test_waiters_are_one_shot(self):
        r, w = make_pipe(8)
        fired = []
        r.add_waiter(EVENT_READ, lambda mask: fired.append(mask))
        w.write(b"a")
        w.write(b"b")
        assert len(fired) == 1

    def test_waiter_cancel(self):
        r, w = make_pipe(8)
        fired = []
        waiter = r.add_waiter(EVENT_READ, lambda mask: fired.append(mask))
        waiter.cancel()
        w.write(b"a")
        assert fired == []

    def test_reader_close_wakes_writer(self):
        r, w = make_pipe(2)
        w.write(b"ab")  # full
        fired = []
        w.add_waiter(EVENT_WRITE, lambda mask: fired.append(mask))
        r.close()
        assert fired  # woken so the writer can observe the broken pipe


@given(
    chunks=st.lists(st.binary(min_size=1, max_size=50), max_size=30),
    capacity=st.integers(1, 64),
    read_size=st.integers(1, 64),
)
def test_pipe_preserves_byte_stream(chunks, capacity, read_size):
    """Property: alternating bounded writes/reads reproduce the exact
    byte stream for any chunking, capacity, and read granularity."""
    r, w = make_pipe(capacity)
    sent = bytearray()
    received = bytearray()
    pending = list(chunks)
    offset = 0
    stalled = 0
    while pending or offset or (len(sent) != len(received)):
        progress = False
        if pending:
            chunk = pending[0][offset:]
            wrote = w.write(chunk)
            if wrote is not WOULD_BLOCK and wrote > 0:
                sent.extend(chunk[:wrote])
                offset += wrote
                if offset == len(pending[0]):
                    pending.pop(0)
                    offset = 0
                progress = True
        data = r.read(read_size)
        if data is not WOULD_BLOCK and data:
            received.extend(data)
            progress = True
        if not progress:
            stalled += 1
            if stalled > 2:
                break
        else:
            stalled = 0
    assert bytes(received) == bytes(sent)
    assert bytes(sent) == b"".join(chunks)[: len(sent)]
