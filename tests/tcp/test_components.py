"""TCP building blocks: segments, iovecs, RTT, Reno, windows."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.tcp.congestion import RenoCongestion
from repro.tcp.iovec import IoVec
from repro.tcp.packet import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_SYN,
    ChecksumError,
    Segment,
    checksum,
    seq_add,
    seq_le,
    seq_lt,
    seq_sub,
)
from repro.tcp.rtt import RttEstimator
from repro.tcp.window import RecvWindow, SendWindow


class TestSegmentWire:
    def test_encode_decode_roundtrip(self):
        seg = Segment(1234, 80, 1000, 2000, FLAG_SYN | FLAG_ACK, 512, b"abc")
        out = Segment.decode(seg.encode())
        assert (out.src_port, out.dst_port) == (1234, 80)
        assert (out.seq, out.ack) == (1000, 2000)
        assert out.flags == FLAG_SYN | FLAG_ACK
        assert out.window == 512
        assert out.payload == b"abc"

    def test_corruption_detected(self):
        seg = Segment(1, 2, 3, 4, FLAG_ACK, 5, b"payload")
        wire = bytearray(seg.encode())
        wire[25] ^= 0xFF  # flip payload bits
        with pytest.raises(ChecksumError):
            Segment.decode(bytes(wire))

    def test_header_corruption_detected(self):
        seg = Segment(1, 2, 3, 4, FLAG_ACK, 5, b"payload")
        wire = bytearray(seg.encode())
        wire[4] ^= 0x01  # flip a seq bit
        with pytest.raises(ChecksumError):
            Segment.decode(bytes(wire))

    def test_short_segment_rejected(self):
        with pytest.raises(ValueError):
            Segment.decode(b"too short")

    def test_wire_size_includes_header(self):
        seg = Segment(1, 2, 0, 0, 0, 0, b"x" * 100)
        assert seg.wire_size == 140

    def test_seg_len_counts_phantom_bytes(self):
        assert Segment(1, 2, 0, 0, FLAG_SYN, 0).seg_len == 1
        assert Segment(1, 2, 0, 0, FLAG_FIN, 0, b"ab").seg_len == 3

    def test_checksum_ones_complement(self):
        assert checksum(b"\x00\x00") == 0xFFFF
        data = b"\x45\x00\x00\x3c"
        assert 0 <= checksum(data) <= 0xFFFF

    @given(st.binary(max_size=200))
    def test_any_payload_roundtrips(self, payload):
        seg = Segment(5555, 80, 42, 43, FLAG_ACK, 1024, payload)
        assert Segment.decode(seg.encode()).payload == payload


class TestSeqArithmetic:
    def test_ordering_simple(self):
        assert seq_lt(1, 2)
        assert not seq_lt(2, 1)
        assert seq_le(2, 2)

    def test_wraparound(self):
        near_max = (1 << 32) - 10
        assert seq_lt(near_max, 5)  # wrapped
        assert seq_add(near_max, 20) == 10
        assert seq_sub(10, near_max) == 20


class TestIoVec:
    def test_append_and_length(self):
        vec = IoVec(b"abc")
        vec.append(b"defg")
        assert len(vec) == 7
        assert vec.to_bytes() == b"abcdefg"

    def test_zero_copy_chunks(self):
        vec = IoVec()
        vec.append(b"chunk-one")
        vec.append(b"chunk-two")
        assert vec.chunk_count == 2  # no coalescing copies

    def test_consume_across_chunks(self):
        vec = IoVec()
        vec.extend([b"abc", b"def", b"ghi"])
        vec.consume(4)
        assert vec.to_bytes() == b"efghi"

    def test_slice_no_copy(self):
        vec = IoVec()
        vec.extend([b"0123", b"4567", b"89"])
        window = vec.slice(2, 6)
        assert window.to_bytes() == b"234567"
        assert len(vec) == 10  # source untouched

    def test_peek(self):
        vec = IoVec(b"abcdef")
        assert vec.peek(3).to_bytes() == b"abc"
        assert len(vec) == 6

    def test_slice_past_end_clamps(self):
        vec = IoVec(b"abc")
        assert vec.slice(2, 100).to_bytes() == b"c"
        assert vec.slice(5, 10).to_bytes() == b""

    def test_empty_append_ignored(self):
        vec = IoVec()
        vec.append(b"")
        assert vec.chunk_count == 0

    @given(
        chunks=st.lists(st.binary(min_size=1, max_size=30), max_size=15),
        start=st.integers(0, 100),
        length=st.integers(0, 100),
    )
    def test_slice_matches_bytes_semantics(self, chunks, start, length):
        vec = IoVec()
        vec.extend(chunks)
        joined = b"".join(chunks)
        assert vec.slice(start, length).to_bytes() == joined[start:start + length]


class TestRtt:
    def test_first_sample_initializes(self):
        est = RttEstimator()
        est.sample(0.1)
        assert est.srtt == pytest.approx(0.1)
        assert est.rto >= 0.2  # min clamp

    def test_steady_samples_tighten_rto(self):
        est = RttEstimator()
        for _ in range(50):
            est.sample(0.1)
        assert est.rto == pytest.approx(0.2, abs=0.05)  # near min_rto

    def test_variance_inflates_rto(self):
        steady = RttEstimator()
        jittery = RttEstimator()
        for i in range(50):
            steady.sample(0.1)
            jittery.sample(0.05 if i % 2 else 0.3)
        assert jittery.rto > steady.rto

    def test_backoff_doubles_and_clamps(self):
        est = RttEstimator(initial_rto=1.0, max_rto=4.0)
        est.backoff()
        assert est.rto == 2.0
        est.backoff()
        est.backoff()
        assert est.rto == 4.0  # clamped

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator().sample(-1)


class TestReno:
    def test_slow_start_doubles_per_rtt(self):
        reno = RenoCongestion(mss=1000)
        start = reno.window
        # Each ACK of a full segment grows cwnd by one mss in slow start.
        reno.on_new_ack(1000, 0)
        assert reno.window == start + 1000

    def test_transition_to_congestion_avoidance(self):
        reno = RenoCongestion(mss=1000)
        reno.ssthresh = 4000
        while reno.state == "slow_start":
            reno.on_new_ack(1000, 0)
        assert reno.window >= 4000
        before = reno.window
        reno.on_new_ack(1000, 0)
        # Linear growth now: much less than +mss.
        assert reno.window - before <= 1000

    def test_three_dupacks_trigger_fast_retransmit(self):
        reno = RenoCongestion(mss=1000)
        flight = 10_000
        assert not reno.on_dup_ack(flight)
        assert not reno.on_dup_ack(flight)
        assert reno.on_dup_ack(flight)  # the third
        assert reno.state == "fast_recovery"
        assert reno.ssthresh == 5000
        assert reno.window == 5000 + 3000

    def test_recovery_exit_deflates(self):
        reno = RenoCongestion(mss=1000)
        for _ in range(3):
            reno.on_dup_ack(10_000)
        reno.on_new_ack(2000, 8000)
        assert reno.state != "fast_recovery"
        assert reno.window == reno.ssthresh

    def test_timeout_collapses_to_one_mss(self):
        reno = RenoCongestion(mss=1000)
        for _ in range(10):
            reno.on_new_ack(1000, 0)
        reno.on_timeout(8000)
        assert reno.window == 1000
        assert reno.state == "slow_start"
        assert reno.ssthresh == 4000

    def test_ssthresh_floor_is_two_mss(self):
        reno = RenoCongestion(mss=1000)
        reno.on_timeout(1000)
        assert reno.ssthresh == 2000


class TestSendWindow:
    def make(self, mss=1000, iss=5000):
        return SendWindow(iss, mss)

    def test_enqueue_and_segmentize(self):
        snd = self.make()
        snd.peer_window = 10_000
        snd.enqueue(b"a" * 2500)
        first = snd.next_segment_payload(cwnd=10_000)
        assert len(first) == 1000
        snd.mark_sent(1000, now=0.0)
        second = snd.next_segment_payload(cwnd=10_000)
        assert len(second) == 1000

    def test_window_limits_transmission(self):
        snd = self.make()
        snd.peer_window = 1500
        snd.enqueue(b"a" * 5000)
        snd.mark_sent(1000, 0.0)
        nxt = snd.next_segment_payload(cwnd=100_000)
        assert len(nxt) == 500  # only 500 left in peer window

    def test_cwnd_limits_transmission(self):
        snd = self.make()
        snd.peer_window = 100_000
        snd.enqueue(b"a" * 5000)
        assert len(snd.next_segment_payload(cwnd=700)) == 700

    def test_ack_consumes_buffer(self):
        snd = self.make(iss=0)
        snd.peer_window = 10_000
        snd.enqueue(b"x" * 3000)
        snd.mark_sent(1000, 0.0)
        acked, _rtt = snd.mark_acked(1000, 1.0)
        assert acked == 1000
        assert snd.flight_size == 0
        assert len(snd.buffer) == 2000

    def test_rtt_sample_on_timed_segment(self):
        snd = self.make(iss=0)
        snd.peer_window = 10_000
        snd.enqueue(b"x" * 1000)
        snd.mark_sent(1000, now=10.0)
        _acked, rtt = snd.mark_acked(1000, now=10.25)
        assert rtt == pytest.approx(0.25)

    def test_karn_rule_suppresses_retransmit_sample(self):
        snd = self.make(iss=0)
        snd.peer_window = 10_000
        snd.enqueue(b"x" * 1000)
        snd.mark_sent(1000, now=10.0)
        snd.retransmit_payload()  # retransmission covers the timed bytes
        _acked, rtt = snd.mark_acked(1000, now=12.0)
        assert rtt is None

    def test_ack_is_new_bounds(self):
        snd = self.make(iss=100)
        snd.enqueue(b"x" * 10)
        snd.mark_sent(10, 0.0)
        assert not snd.ack_is_new(100)  # == una
        assert snd.ack_is_new(105)
        assert snd.ack_is_new(110)
        assert not snd.ack_is_new(111)  # beyond nxt


class TestRecvWindow:
    def test_in_order_delivery(self):
        rcv = RecvWindow(irs=1000, capacity=10_000)
        assert rcv.accept(1000, b"abc")
        assert rcv.read(10) == b"abc"
        assert rcv.rcv_nxt == 1003

    def test_out_of_order_held_then_drained(self):
        rcv = RecvWindow(irs=0, capacity=10_000)
        assert not rcv.accept(3, b"def")  # hole at 0
        assert rcv.available == 0
        assert rcv.accept(0, b"abc")
        assert rcv.read(100) == b"abcdef"

    def test_duplicate_ignored(self):
        rcv = RecvWindow(irs=0, capacity=10_000)
        rcv.accept(0, b"abc")
        assert not rcv.accept(0, b"abc")
        assert rcv.read(100) == b"abc"

    def test_overlap_trimmed(self):
        rcv = RecvWindow(irs=0, capacity=10_000)
        rcv.accept(0, b"abcd")
        rcv.accept(2, b"cdef")  # overlaps by 2
        assert rcv.read(100) == b"abcdef"

    def test_advertised_shrinks_with_buffered_data(self):
        rcv = RecvWindow(irs=0, capacity=1000)
        rcv.accept(0, b"x" * 400)
        assert rcv.advertised == 600
        rcv.read(400)
        assert rcv.advertised == 1000

    def test_out_of_order_counts_against_window(self):
        rcv = RecvWindow(irs=0, capacity=1000)
        rcv.accept(500, b"y" * 100)
        assert rcv.advertised == 900

    @given(st.permutations(list(range(8))))
    def test_any_arrival_order_reassembles(self, order):
        chunks = [bytes([65 + i]) * 10 for i in range(8)]
        rcv = RecvWindow(irs=0, capacity=10_000)
        for index in order:
            rcv.accept(index * 10, chunks[index])
        assert rcv.read(1000) == b"".join(chunks)
