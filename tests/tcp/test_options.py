"""TCP protocol options: delayed ACKs (RFC 1122) and Nagle's algorithm."""

from __future__ import annotations

import pytest

from repro.simos.clock import VirtualClock
from repro.simos.net import DuplexPacketLink
from repro.tcp.stack import TcpParams, TcpStack, connect_stacks

from .test_stack import Sink, establish


def make_pair(params):
    clock = VirtualClock()
    link = DuplexPacketLink(clock, 12.5e6, 0.001, seed=0)
    stack_a = TcpStack(clock, "hostA", params, seed=1)
    stack_b = TcpStack(clock, "hostB", params, seed=2)
    connect_stacks(stack_a, stack_b, link)
    return clock, stack_a, stack_b


def bulk_transfer(params, size=200_000):
    """One-way transfer; returns (sender stats, receiver stats, ok)."""
    clock, a, b = make_pair(params)
    client, server = establish(clock, a, b)
    payload = bytes(i % 256 for i in range(size))
    received = bytearray()

    def drain(data, error):
        assert error is None
        if data:
            received.extend(data)
            if len(received) < size:
                b.recv(server, 65536, drain)

    b.recv(server, 65536, drain)
    a.send(client, payload, Sink())
    clock.run_until_idle()
    return a.stats, b.stats, bytes(received) == payload


class TestDelayedAck:
    def test_bulk_correctness_preserved(self):
        _a, _b, ok = bulk_transfer(TcpParams(delayed_ack=True))
        assert ok

    def test_halves_ack_traffic(self):
        _a1, plain_receiver, ok1 = bulk_transfer(TcpParams())
        _a2, delayed_receiver, ok2 = bulk_transfer(TcpParams(delayed_ack=True))
        assert ok1 and ok2
        # The receiver's outgoing segments are almost all ACKs; delayed
        # ACKs cut them roughly in half.
        assert (
            delayed_receiver.segments_sent
            < plain_receiver.segments_sent * 0.7
        )

    def test_lone_segment_acked_after_delay(self):
        params = TcpParams(delayed_ack=True, ack_delay=0.04)
        clock, a, b = make_pair(params)
        client, server = establish(clock, a, b)
        got = Sink()
        b.recv(server, 100, got)
        a.send(client, b"just one small segment", Sink())
        clock.run_until_idle()
        assert got.values == [b"just one small segment"]
        # The sender eventually saw the ACK (flight drained, timer off).
        assert client.snd.flight_size == 0

    def test_ping_pong_still_fast(self):
        """Piggybacking: request/response traffic must not pay the ACK
        delay on every turn (data carries the ACK)."""
        params = TcpParams(delayed_ack=True, ack_delay=0.2)
        clock, a, b = make_pair(params)
        client, server = establish(clock, a, b)
        rounds = 10
        state = {"rounds": 0}

        def server_loop(data, error):
            assert error is None
            if data:
                b.send(server, data, Sink())
                if state["rounds"] < rounds:
                    b.recv(server, 100, server_loop)

        def client_loop(data, error):
            assert error is None
            if data:
                state["rounds"] += 1
                if state["rounds"] < rounds:
                    a.send(client, b"ping", Sink())
                    a.recv(client, 100, client_loop)

        b.recv(server, 100, server_loop)
        a.recv(client, 100, client_loop)
        a.send(client, b"ping", Sink())
        clock.run_until_idle()
        assert state["rounds"] == rounds
        # 10 RTTs at ~2ms plus slack — NOT 10 x 200ms of ACK delays.
        assert clock.now < 0.5


class TestNagle:
    def test_bulk_correctness_preserved(self):
        _a, _b, ok = bulk_transfer(TcpParams(nagle=True))
        assert ok

    def test_coalesces_small_writes(self):
        def count_data_segments(nagle: bool) -> int:
            clock, a, b = make_pair(TcpParams(nagle=nagle))
            client, server = establish(clock, a, b)
            received = bytearray()

            def drain(data, error):
                if data:
                    received.extend(data)
                    if len(received) < 600:
                        b.recv(server, 4096, drain)

            b.recv(server, 4096, drain)
            for i in range(30):
                a.send(client, b"x" * 20, Sink())
            clock.run_until_idle()
            assert len(received) == 600
            return a.stats.segments_sent

        with_nagle = count_data_segments(True)
        without = count_data_segments(False)
        assert with_nagle < without * 0.5

    def test_single_small_write_not_delayed(self):
        """Nagle holds runts only while data is in flight: the first small
        write goes out immediately."""
        clock, a, b = make_pair(TcpParams(nagle=True))
        client, server = establish(clock, a, b)
        got = Sink()
        b.recv(server, 100, got)
        a.send(client, b"immediate", Sink())
        # Drive only a few milliseconds of virtual time.
        deadline = clock.now + 0.05
        while clock.now < deadline:
            when = clock.next_event_time()
            if when is None or when > deadline:
                break
            clock.advance()
        assert got.values == [b"immediate"]

    def test_nagle_with_delayed_ack_no_deadlock(self):
        """The classic interaction: Nagle + delayed ACK must still make
        progress (the delayed-ACK timer bounds the stall)."""
        params = TcpParams(nagle=True, delayed_ack=True, ack_delay=0.04)
        _a, _b, ok = bulk_transfer(params, size=10_000)
        assert ok
