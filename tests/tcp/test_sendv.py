"""Gathered sends through the application-level TCP stack.

``TcpSockets.send_v`` enqueues every buffer as memoryview slices into
the send window's iovec — never joined into one bytes object.  These
tests pin the ordering/parity guarantees at the monadic API, the
zero-copy enqueue at the stack level, and the HTTP server's use of
``AppTcpSocketLayer.send_v`` for its header+body gathered writes.
"""

from __future__ import annotations

from repro.core.do_notation import do
from repro.http.server import AppTcpSocketLayer, WebServer
from repro.runtime.sim_runtime import SimRuntime
from repro.simos.net import DuplexPacketLink
from repro.tcp.socket_api import install_tcp
from repro.tcp.stack import TcpError, TcpParams, TcpStack, connect_stacks


def make_world(params: TcpParams | None = None):
    rt = SimRuntime(uncaught="store")
    clock = rt.kernel.clock
    link = DuplexPacketLink(clock, 12.5e6, 0.001, seed=3)
    server_stack = TcpStack(clock, "server", params or TcpParams(), seed=1)
    client_stack = TcpStack(clock, "client", params or TcpParams(), seed=2)
    connect_stacks(client_stack, server_stack, link)
    ssock = install_tcp(rt.sched, server_stack)
    csock = install_tcp(rt.sched, client_stack)
    return rt, ssock, csock


def _echo_server(rt, ssock, nbytes, received):
    @do
    def server():
        listener = yield ssock.listen(80)
        conn = yield ssock.accept(listener)
        data = yield ssock.recv_exact(conn, nbytes)
        received.append(data)
        yield ssock.close(conn)

    rt.spawn(server(), name="server")


class TestSendV:
    def test_buffers_arrive_in_order_uncorrupted(self):
        rt, ssock, csock = make_world()
        bufs = [b"alpha-", bytearray(b"beta-"), memoryview(b"gamma")]
        joined = b"alpha-beta-gamma"
        received: list[bytes] = []
        counts: list[int] = []
        _echo_server(rt, ssock, len(joined), received)

        @do
        def client():
            conn = yield csock.connect("server", 80)
            count = yield csock.send_v(conn, bufs)
            counts.append(count)
            yield csock.close(conn)

        rt.spawn(client(), name="client")
        rt.run(until=lambda: bool(received))
        assert received == [joined]
        assert counts == [len(joined)]

    def test_empty_buffers_are_skipped(self):
        rt, ssock, csock = make_world()
        received: list[bytes] = []
        counts: list[int] = []
        _echo_server(rt, ssock, 2, received)

        @do
        def client():
            conn = yield csock.connect("server", 80)
            count = yield csock.send_v(conn, [b"", b"a", b"", b"b", b""])
            counts.append(count)
            yield csock.close(conn)

        rt.spawn(client(), name="client")
        rt.run(until=lambda: bool(received))
        assert received == [b"ab"]
        assert counts == [2]

    def test_all_empty_resolves_zero_immediately(self):
        rt, _ssock, csock = make_world()
        counts: list[int] = []

        @do
        def client():
            conn = yield csock.connect("server", 80)
            count = yield csock.send_v(conn, [b"", b""])
            counts.append(count)
            yield csock.close(conn)

        @do
        def server():
            listener = yield _ssock.listen(80)
            conn = yield _ssock.accept(listener)
            yield _ssock.close(conn)

        rt.spawn(server(), name="server")
        rt.spawn(client(), name="client")
        rt.run(until=lambda: bool(counts))
        assert counts == [0]

    def test_burst_larger_than_send_buffer(self):
        # The gathered send must drain through a send buffer far smaller
        # than the total: iovec entries are consumed slice by slice as
        # window opens, byte-exact across buffer boundaries.
        params = TcpParams(send_buffer=2048, mss=536)
        rt, ssock, csock = make_world(params)
        bufs = [bytes([65 + (i % 26)]) * 777 for i in range(40)]  # ~30 KiB
        joined = b"".join(bufs)
        received: list[bytes] = []
        counts: list[int] = []
        _echo_server(rt, ssock, len(joined), received)

        @do
        def client():
            conn = yield csock.connect("server", 80)
            count = yield csock.send_v(conn, bufs)
            counts.append(count)
            yield csock.close(conn)

        rt.spawn(client(), name="client")
        rt.run(until=lambda: bool(received))
        assert received == [joined]
        assert counts == [len(joined)]

    def test_sendv_on_closed_connection_errors(self):
        rt, ssock, csock = make_world()
        failures: list[BaseException] = []

        @do
        def server():
            listener = yield ssock.listen(80)
            conn = yield ssock.accept(listener)
            yield ssock.close(conn)

        @do
        def client():
            conn = yield csock.connect("server", 80)
            yield csock.close(conn)
            try:
                yield csock.send_v(conn, [b"too", b"late"])
            except TcpError as exc:
                failures.append(exc)

        rt.spawn(server(), name="server")
        rt.spawn(client(), name="client")
        rt.run(until=lambda: bool(failures))
        assert len(failures) == 1

    def test_enqueue_is_zero_copy(self):
        # With the window wedged shut (tiny send buffer), queued iovec
        # entries must still reference the caller's buffers — no join,
        # no intermediate bytes object.
        params = TcpParams(send_buffer=64, mss=536)
        rt, ssock, csock = make_world(params)
        conns = []

        @do
        def server():
            listener = yield ssock.listen(80)
            conn = yield ssock.accept(listener)
            conns.append(("server", conn))

        @do
        def client():
            conn = yield csock.connect("server", 80)
            conns.append(("client", conn))

        rt.spawn(server(), name="server")
        rt.spawn(client(), name="client")
        rt.run(until=lambda: len(conns) == 2)
        conn = dict(conns)["client"]
        big = [bytearray(b"x" * 4096), bytearray(b"y" * 4096)]
        results: list = []
        conn.stack.sendv(conn, big, lambda count, error: results.append(
            (count, error)))
        # Not yet drained: the window fits 64 bytes of 8192.
        assert not results
        queued = [entry[0].obj for entry in conn.send_waiters
                  if isinstance(entry[0], memoryview)]
        assert any(obj is buf for obj in queued for buf in big)


class TestHttpOverSendV:
    """The HTTP server's gathered header+body write rides
    ``AppTcpSocketLayer.send_v`` — one stack call, zero joins."""

    def make_site_world(self):
        rt = SimRuntime(uncaught="store")
        rt.kernel.fs.create_file("index.html", 1200)
        clock = rt.kernel.clock
        link = DuplexPacketLink(clock, 12.5e6, 0.001, seed=3)
        server_stack = TcpStack(clock, "server", TcpParams(), seed=1)
        client_stack = TcpStack(clock, "client", TcpParams(), seed=2)
        connect_stacks(client_stack, server_stack, link)
        ssock = install_tcp(rt.sched, server_stack)
        csock = install_tcp(rt.sched, client_stack)
        layer = AppTcpSocketLayer(ssock, port=80)
        server = WebServer(layer, rt.kernel.fs)
        return rt, server, layer, csock

    def test_response_uses_send_v(self):
        rt, server, layer, csock = self.make_site_world()
        calls: list[int] = []
        original = layer.send_v

        def counting_send_v(conn, bufs):
            calls.append(len(bufs))
            return original(conn, bufs)

        layer.send_v = counting_send_v
        responses = []

        @do
        def client():
            conn = yield csock.connect("server", 80)
            yield csock.send(conn, b"GET /index.html HTTP/1.0\r\n\r\n")
            collected = bytearray()
            while True:
                data = yield csock.recv(conn, 65536)
                if not data:
                    break
                collected.extend(data)
            responses.append(bytes(collected))
            yield csock.close(conn)

        rt.spawn(server.main(), name="server")
        rt.spawn(client(), name="client")
        rt.run(until=lambda: bool(responses))
        raw = responses[0]
        assert raw.startswith(b"HTTP/1.1 200")
        assert b"Content-Length: 1200" in raw
        # Header and body left as one gathered call (>= 2 iovecs).
        assert calls and max(calls) >= 2
