"""Monadic threads speaking through the application-level TCP stack.

This is the paper's full vertical: ``@do`` threads -> ``sys_tcp`` ->
scheduler handler -> TCP engine -> lossy packet link -> peer stack ->
callbacks -> thread resumption.
"""

from __future__ import annotations

import pytest

from repro.core.do_notation import do
from repro.core.syscalls import sys_fork
from repro.runtime.sim_runtime import SimRuntime
from repro.simos.net import DuplexPacketLink
from repro.tcp.socket_api import install_tcp
from repro.tcp.stack import TcpParams, TcpStack, connect_stacks


def make_world(loss=0.0, seed=0):
    """One runtime hosting two stacks (client host, server host)."""
    rt = SimRuntime()
    clock = rt.kernel.clock
    link = DuplexPacketLink(
        clock, bandwidth=12.5e6, latency=0.001, loss=loss, seed=seed
    )
    server_stack = TcpStack(clock, "server", TcpParams(), seed=1)
    client_stack = TcpStack(clock, "client", TcpParams(), seed=2)
    connect_stacks(client_stack, server_stack, link)
    server_sock = install_tcp(rt.sched, server_stack)
    client_sock = install_tcp(rt.sched, client_stack)
    return rt, server_sock, client_sock


class TestMonadicSockets:
    def test_echo_roundtrip(self):
        rt, ssock, csock = make_world()
        replies = []

        @do
        def server():
            listener = yield ssock.listen(80)
            conn = yield ssock.accept(listener)
            data = yield ssock.recv_exact(conn, 5)
            yield ssock.send(conn, data.upper())
            yield ssock.close(conn)

        @do
        def client():
            conn = yield csock.connect("server", 80)
            yield csock.send(conn, b"hello")
            reply = yield csock.recv_exact(conn, 5)
            replies.append(reply)
            yield csock.close(conn)

        rt.spawn(server())
        rt.spawn(client())
        rt.run(until=lambda: bool(replies))
        assert replies == [b"HELLO"]

    def test_many_concurrent_connections(self):
        rt, ssock, csock = make_world()
        done = []

        @do
        def handler(conn):
            data = yield ssock.recv_exact(conn, 8)
            yield ssock.send(conn, data[::-1])
            yield ssock.close(conn)

        @do
        def server():
            listener = yield ssock.listen(80, backlog=64)
            while True:
                conn = yield ssock.accept(listener)
                yield sys_fork(handler(conn))

        @do
        def client(i):
            conn = yield csock.connect("server", 80)
            msg = b"%07d!" % i
            yield csock.send(conn, msg)
            reply = yield csock.recv_exact(conn, 8)
            assert reply == msg[::-1]
            done.append(i)
            yield csock.close(conn)

        rt.spawn(server())
        count = 20
        for i in range(count):
            rt.spawn(client(i))
        rt.run(until=lambda: len(done) == count)
        assert sorted(done) == list(range(count))

    def test_bulk_transfer_over_lossy_link(self):
        rt, ssock, csock = make_world(loss=0.05, seed=7)
        payload = bytes((i * 13) % 256 for i in range(80_000))
        received = []

        @do
        def server():
            listener = yield ssock.listen(80)
            conn = yield ssock.accept(listener)
            data = yield ssock.recv_exact(conn, len(payload))
            received.append(data)
            yield ssock.close(conn)

        @do
        def client():
            conn = yield csock.connect("server", 80)
            yield csock.send(conn, payload)
            yield csock.close(conn)

        rt.spawn(server())
        rt.spawn(client())
        rt.run(until=lambda: bool(received))
        assert received[0] == payload

    def test_recv_until_line_protocol(self):
        rt, ssock, csock = make_world()
        lines = []

        @do
        def server():
            listener = yield ssock.listen(80)
            conn = yield ssock.accept(listener)
            buffer, index = yield ssock.recv_until(conn, b"\r\n")
            lines.append(buffer[:index])
            yield ssock.close(conn)

        @do
        def client():
            conn = yield csock.connect("server", 80)
            yield csock.send(conn, b"GET /index.html HTTP/1.0\r\n")
            yield csock.close(conn)

        rt.spawn(server())
        rt.spawn(client())
        rt.run(until=lambda: bool(lines))
        assert lines == [b"GET /index.html HTTP/1.0"]

    def test_connect_refused_raises_in_thread(self):
        rt, _ssock, csock = make_world()
        outcome = []

        @do
        def client():
            try:
                yield csock.connect("server", 12345)
            except OSError as exc:
                outcome.append(type(exc).__name__)

        rt.spawn(client())
        rt.run(until=lambda: bool(outcome))
        assert outcome == ["ConnectionReset"]

    def test_eof_recv_returns_empty(self):
        rt, ssock, csock = make_world()
        got = []

        @do
        def server():
            listener = yield ssock.listen(80)
            conn = yield ssock.accept(listener)
            yield ssock.close(conn)

        @do
        def client():
            conn = yield csock.connect("server", 80)
            data = yield csock.recv(conn, 100)
            got.append(data)
            yield csock.close(conn)

        rt.spawn(server())
        rt.spawn(client())
        rt.run(until=lambda: bool(got))
        assert got == [b""]
