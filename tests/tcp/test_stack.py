"""End-to-end TCP stack tests over simulated packet links."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.simos.clock import VirtualClock
from repro.simos.net import DuplexPacketLink
from repro.tcp.stack import (
    ConnectionReset,
    ConnectionTimeout,
    TcpParams,
    TcpStack,
    connect_stacks,
)

BANDWIDTH = 12.5e6  # 100Mbps
LATENCY = 0.001


def make_pair(loss=0.0, duplicate=0.0, jitter=0.0, seed=0, params=None):
    """Two hosts wired by a (possibly lossy) duplex link."""
    clock = VirtualClock()
    link = DuplexPacketLink(
        clock, BANDWIDTH, LATENCY,
        loss=loss, duplicate=duplicate, jitter=jitter, seed=seed,
    )
    stack_a = TcpStack(clock, "hostA", params or TcpParams(), seed=1)
    stack_b = TcpStack(clock, "hostB", params or TcpParams(), seed=2)
    connect_stacks(stack_a, stack_b, link)
    return clock, stack_a, stack_b, link


class Sink:
    """Callback collector for the callback-level API."""

    def __init__(self):
        self.values = []
        self.errors = []

    def __call__(self, value, error):
        if error is not None:
            self.errors.append(error)
        else:
            self.values.append(value)


class TestHandshake:
    def test_three_way_handshake(self):
        clock, a, b, _link = make_pair()
        b.listen(80)
        connected = Sink()
        accepted = Sink()
        b.accept(b.listeners[80], accepted)
        a.connect("hostB", 80, connected)
        clock.run_until_idle()
        assert len(connected.values) == 1
        assert len(accepted.values) == 1
        assert connected.values[0].state == "ESTABLISHED"
        assert accepted.values[0].state == "ESTABLISHED"

    def test_connect_to_closed_port_resets(self):
        clock, a, _b, _link = make_pair()
        connected = Sink()
        a.connect("hostB", 9999, connected)
        clock.run_until_idle()
        assert len(connected.errors) == 1
        assert isinstance(connected.errors[0], ConnectionReset)

    def test_syn_loss_recovered_by_retransmission(self):
        clock, a, b, _link = make_pair(loss=0.9, seed=11)
        # With 90% loss the handshake may take several attempts but the
        # exponential-backoff retransmission eventually lands.
        b.listen(80)
        connected = Sink()
        b.accept(b.listeners[80], Sink())
        a.connect("hostB", 80, connected)
        clock.run_until_idle()
        assert connected.values or connected.errors  # terminated either way

    def test_handshake_gives_up_on_dead_link(self):
        clock, a, _b, _link = make_pair(loss=1.0)
        connected = Sink()
        a.connect("hostB", 80, connected)
        clock.run_until_idle()
        assert len(connected.errors) == 1
        assert isinstance(connected.errors[0], ConnectionTimeout)

    def test_backlog_limit_drops_excess_syns(self):
        clock, a, b, _link = make_pair()
        b.listen(80, backlog=1)
        sinks = [Sink() for _ in range(3)]
        for sink in sinks:
            a.connect("hostB", 80, sink)
        clock.run_until_idle()
        # Only one connection fits the backlog; the others time out after
        # SYN retries (the listener never accepts).
        established = sum(1 for s in sinks if s.values)
        assert established == 1


def run_for(clock, seconds):
    """Advance the calendar, but only ``seconds`` of virtual time — for
    scenarios that deliberately reach a steady retry loop (zero-window
    persist probes never stop while the receiver refuses to read)."""
    deadline = clock.now + seconds
    while True:
        when = clock.next_event_time()
        if when is None or when > deadline:
            return
        clock.advance()


def establish(clock, a, b, port=80):
    """Handshake helper: returns (client_conn, server_conn)."""
    if port not in b.listeners:
        b.listen(port)
    accepted = Sink()
    connected = Sink()
    b.accept(b.listeners[port], accepted)
    a.connect("hostB", port, connected)
    clock.run_until_idle()
    assert connected.values and accepted.values
    return connected.values[0], accepted.values[0]


class TestDataTransfer:
    def test_small_message(self):
        clock, a, b, _link = make_pair()
        client, server = establish(clock, a, b)
        got = Sink()
        b.recv(server, 100, got)
        a.send(client, b"hello tcp", Sink())
        clock.run_until_idle()
        assert got.values == [b"hello tcp"]

    def test_bidirectional(self):
        clock, a, b, _link = make_pair()
        client, server = establish(clock, a, b)
        to_server, to_client = Sink(), Sink()
        b.recv(server, 100, to_server)
        a.recv(client, 100, to_client)
        a.send(client, b"ping", Sink())
        b.send(server, b"pong", Sink())
        clock.run_until_idle()
        assert to_server.values == [b"ping"]
        assert to_client.values == [b"pong"]

    def test_large_transfer_segmented(self):
        clock, a, b, _link = make_pair()
        client, server = establish(clock, a, b)
        payload = bytes(range(256)) * 1024  # 256KB
        received = bytearray()

        def on_data(data, error):
            assert error is None
            if data:
                received.extend(data)
                b.recv(server, 65536, on_data)

        b.recv(server, 65536, on_data)
        a.send(client, payload, Sink())
        clock.run_until_idle()
        assert bytes(received) == payload
        assert a.stats.segments_sent > len(payload) // 1460

    def test_flow_control_blocks_sender(self):
        params = TcpParams(recv_window=4096, send_buffer=4096)
        clock, a, b, _link = make_pair(params=params)
        client, server = establish(clock, a, b)
        payload = b"z" * 50_000
        sent = Sink()
        a.send(client, payload, sent)
        run_for(clock, 30.0)
        # Receiver never reads: the sender must stall, not complete.
        assert not sent.values
        # Now drain the receiver; the send completes.
        received = bytearray()

        def drain(data, error):
            assert error is None
            if data:
                received.extend(data)
                if len(received) < len(payload):
                    b.recv(server, 8192, drain)

        b.recv(server, 8192, drain)
        clock.run_until_idle()
        assert sent.values == [len(payload)]
        assert bytes(received) == payload

    def test_zero_window_probe_recovers(self):
        """Even if the window-update ACK is lost, probes recover."""
        params = TcpParams(recv_window=2048, send_buffer=65536)
        clock, a, b, link = make_pair(params=params, loss=0.2, seed=5)
        client, server = establish(clock, a, b)
        payload = b"q" * 20_000
        sent = Sink()
        a.send(client, payload, sent)
        received = bytearray()

        def drain(data, error):
            assert error is None
            if data:
                received.extend(data)
                if len(received) < len(payload):
                    b.recv(server, 1024, drain)

        b.recv(server, 1024, drain)
        clock.run_until_idle()
        assert bytes(received) == payload


class TestTeardown:
    def test_orderly_close_delivers_eof(self):
        clock, a, b, _link = make_pair()
        client, server = establish(clock, a, b)
        got = Sink()
        a.send(client, b"bye", Sink())
        a.close(client)
        b.recv(server, 100, got)
        clock.run_until_idle()
        assert got.values == [b"bye"]
        eof = Sink()
        b.recv(server, 100, eof)
        clock.run_until_idle()
        assert eof.values == [b""]

    def test_both_sides_close_cleanly(self):
        clock, a, b, _link = make_pair()
        client, server = establish(clock, a, b)
        a.close(client)
        b.close(server)
        clock.run_until_idle()
        assert client.state == "CLOSED"
        assert server.state == "CLOSED"
        assert not a.connections and not b.connections

    def test_time_wait_holds_then_releases(self):
        params = TcpParams(time_wait=5.0)
        clock, a, b, _link = make_pair(params=params)
        client, server = establish(clock, a, b)
        a.close(client)
        clock.run_due()
        # Drive until both FINs exchange.
        for _ in range(200):
            if server.state == "CLOSE_WAIT":
                break
            clock.advance()
        b.close(server)
        for _ in range(200):
            if client.state == "TIME_WAIT":
                break
            clock.advance()
        assert client.state == "TIME_WAIT"
        clock.run_until_idle()
        assert client.state == "CLOSED"

    def test_abort_sends_rst(self):
        clock, a, b, _link = make_pair()
        client, server = establish(clock, a, b)
        waiting = Sink()
        b.recv(server, 100, waiting)
        a.abort(client)
        clock.run_until_idle()
        assert len(waiting.errors) == 1
        assert isinstance(waiting.errors[0], ConnectionReset)
        assert a.stats.rsts_sent == 1

    def test_send_after_close_errors(self):
        clock, a, b, _link = make_pair()
        client, _server = establish(clock, a, b)
        a.close(client)
        result = Sink()
        a.send(client, b"late", result)
        assert len(result.errors) == 1


class TestLossRecovery:
    def transfer(self, loss, duplicate=0.0, jitter=0.0, seed=0,
                 size=100_000):
        clock, a, b, _link = make_pair(
            loss=loss, duplicate=duplicate, jitter=jitter, seed=seed
        )
        client, server = establish(clock, a, b)
        payload = bytes((i * 7) % 256 for i in range(size))
        received = bytearray()
        finished = Sink()

        def drain(data, error):
            assert error is None
            if data:
                received.extend(data)
            if data and len(received) < len(payload):
                b.recv(server, 65536, drain)

        b.recv(server, 65536, drain)
        a.send(client, payload, finished)
        clock.run_until_idle()
        assert bytes(received) == payload
        return a.stats

    def test_clean_link_no_retransmits(self):
        stats = self.transfer(loss=0.0)
        assert stats.retransmits == 0

    def test_five_percent_loss_recovers(self):
        stats = self.transfer(loss=0.05, seed=3)
        assert stats.retransmits > 0

    def test_heavy_loss_recovers(self):
        self.transfer(loss=0.25, seed=9, size=30_000)

    def test_duplication_harmless(self):
        self.transfer(loss=0.0, duplicate=0.3, seed=4)

    def test_reordering_harmless(self):
        self.transfer(loss=0.0, jitter=0.01, seed=6)

    def test_fast_retransmit_used_under_mild_loss(self):
        stats = self.transfer(loss=0.03, seed=13, size=400_000)
        assert stats.fast_retransmits > 0


@settings(max_examples=12, deadline=None)
@given(
    loss=st.floats(0.0, 0.25),
    duplicate=st.floats(0.0, 0.2),
    jitter=st.floats(0.0, 0.01),
    seed=st.integers(0, 10_000),
    size=st.integers(1, 60_000),
)
def test_reliable_delivery_property(loss, duplicate, jitter, seed, size):
    """THE TCP invariant: whatever the link does (within give-up bounds),
    the receiver sees exactly the sent bytes, in order."""
    clock, a, b, _link = make_pair(
        loss=loss, duplicate=duplicate, jitter=jitter, seed=seed
    )
    client, server = establish(clock, a, b)
    payload = bytes((i * 31 + seed) % 256 for i in range(size))
    received = bytearray()

    def drain(data, error):
        assert error is None
        if data:
            received.extend(data)
            if len(received) < size:
                b.recv(server, 8192, drain)

    b.recv(server, 8192, drain)
    a.send(client, payload, Sink())
    clock.run_until_idle()
    assert bytes(received) == payload
