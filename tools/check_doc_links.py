"""CI gate: documentation cross-links must resolve.

Scans markdown files for references to repository paths and fails when a
referenced path does not exist, so ``ARCHITECTURE.md``'s guided tour (and
the README's pointers) cannot silently rot as the tree moves.

Two reference forms are checked:

* markdown links — ``[text](path)`` (external ``http(s)://``/``mailto:``
  targets and in-page ``#anchors`` are skipped; relative targets resolve
  against the *containing file's* directory);
* backtick path spans — a single-token `` `like/this.py` `` containing a
  ``/`` (or a bare top-level ``FILE.md``) with a known source suffix,
  resolved against the repository root.  Spans with spaces (shell
  command lines) are ignored token-wise except for tokens that look like
  paths, so a copy-pasteable ``python benchmarks/foo.py --flag`` line
  still has its script path checked.

Usage::

    python tools/check_doc_links.py ARCHITECTURE.md README.md docs/*.md
"""

from __future__ import annotations

import os
import re
import sys

#: Suffixes treated as "this backtick span names a repo file".
PATH_SUFFIXES = (".py", ".md", ".json", ".yml", ".yaml", ".toml", ".txt")

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BACKTICK = re.compile(r"`([^`\n]+)`")


def candidate_paths(text: str):
    """Path-like tokens inside one backtick span."""
    for token in text.split():
        token = token.strip(",;:")
        if not token.endswith(PATH_SUFFIXES):
            continue
        if token.startswith(("-", "<", "http://", "https://")):
            continue
        if "*" in token or "$" in token or "{" in token:
            continue  # globs / placeholders are illustrative, not links
        yield token


def check_file(doc: str, root: str) -> list[str]:
    problems: list[str] = []
    base = os.path.dirname(os.path.abspath(doc))
    with open(doc, encoding="utf-8") as handle:
        text = handle.read()

    for match in MD_LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        resolved = os.path.normpath(os.path.join(base, target))
        if not os.path.exists(resolved):
            problems.append(f"{doc}: broken link -> {match.group(1)}")

    for match in BACKTICK.finditer(text):
        for token in candidate_paths(match.group(1)):
            # Backtick paths are repo-root-relative (that is how the
            # docs cite source files); also accept doc-relative.
            if os.path.exists(os.path.join(root, token)):
                continue
            if os.path.exists(os.path.normpath(os.path.join(base, token))):
                continue
            problems.append(f"{doc}: missing path reference -> {token}")
    return problems


def main(argv: list[str] | None = None) -> int:
    docs = (argv if argv is not None else sys.argv[1:])
    if not docs:
        print("usage: check_doc_links.py DOC.md [DOC.md ...]",
              file=sys.stderr)
        return 2
    root = os.getcwd()
    problems: list[str] = []
    for doc in docs:
        if not os.path.exists(doc):
            problems.append(f"{doc}: document itself is missing")
            continue
        problems.extend(check_file(doc, root))
    if problems:
        print("doc link check FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"doc link check passed ({len(docs)} file(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
